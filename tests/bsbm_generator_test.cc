#include "bsbm/generator.h"

#include <set>

#include <gtest/gtest.h>

namespace rdfparams::bsbm {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.num_products = 300;
  config.type_depth = 3;
  config.type_branching = 3;
  config.seed = 11;
  return config;
}

TEST(BsbmGeneratorTest, DeterministicForSeed) {
  Dataset a = Generate(SmallConfig());
  Dataset b = Generate(SmallConfig());
  EXPECT_EQ(a.store.size(), b.store.size());
  EXPECT_EQ(a.dict.size(), b.dict.size());
  GeneratorConfig other = SmallConfig();
  other.seed = 12;
  Dataset c = Generate(other);
  EXPECT_NE(a.store.size(), c.store.size());
}

TEST(BsbmGeneratorTest, TypeTreeShape) {
  Dataset ds = Generate(SmallConfig());
  // 1 + 3 + 9 + 27 nodes.
  EXPECT_EQ(ds.types.size(), 40u);
  EXPECT_EQ(ds.types[0].parent, -1);
  EXPECT_EQ(ds.types[0].level, 0u);
  size_t leaves = ds.LeafTypeIds().size();
  EXPECT_EQ(leaves, 27u);
  // Levels are consistent with parents.
  for (size_t i = 1; i < ds.types.size(); ++i) {
    const TypeNode& t = ds.types[i];
    ASSERT_GE(t.parent, 0);
    EXPECT_EQ(t.level, ds.types[static_cast<size_t>(t.parent)].level + 1);
  }
}

TEST(BsbmGeneratorTest, HierarchyMaterialized) {
  Dataset ds = Generate(SmallConfig());
  rdf::TermId p_type = *ds.dict.FindIri(ds.vocab.rdf_type);
  // Every product matches the root type (hierarchy materialization) — the
  // root is the "generic type" of the paper's E3.
  uint64_t root_count =
      ds.store.CountPattern(rdf::kWildcardId, p_type, ds.types[0].id);
  EXPECT_EQ(root_count, ds.products.size());
  // Leaf types match far fewer products.
  uint64_t leaf_total = 0;
  for (rdf::TermId leaf : ds.LeafTypeIds()) {
    leaf_total += ds.store.CountPattern(rdf::kWildcardId, p_type, leaf);
  }
  EXPECT_EQ(leaf_total, ds.products.size());  // each product has one leaf
}

TEST(BsbmGeneratorTest, TypeCountsMonotoneUpTheTree) {
  Dataset ds = Generate(SmallConfig());
  for (size_t i = 1; i < ds.types.size(); ++i) {
    const TypeNode& t = ds.types[i];
    EXPECT_LE(t.num_products,
              ds.types[static_cast<size_t>(t.parent)].num_products);
  }
  EXPECT_EQ(ds.types[0].num_products, ds.products.size());
}

TEST(BsbmGeneratorTest, OffersHaveProductVendorPrice) {
  Dataset ds = Generate(SmallConfig());
  rdf::TermId p_product = *ds.dict.FindIri(ds.vocab.product);
  rdf::TermId p_price = *ds.dict.FindIri(ds.vocab.price);
  rdf::TermId p_vendor = *ds.dict.FindIri(ds.vocab.vendor);
  uint64_t offers =
      ds.store.CountPattern(rdf::kWildcardId, p_product, rdf::kWildcardId);
  EXPECT_GT(offers, 0u);
  EXPECT_EQ(
      ds.store.CountPattern(rdf::kWildcardId, p_price, rdf::kWildcardId),
      offers);
  EXPECT_EQ(
      ds.store.CountPattern(rdf::kWildcardId, p_vendor, rdf::kWildcardId),
      offers);
}

TEST(BsbmGeneratorTest, PricesAreNumericLiterals) {
  Dataset ds = Generate(SmallConfig());
  rdf::TermId p_price = *ds.dict.FindIri(ds.vocab.price);
  size_t checked = 0;
  ds.store.ScanPattern(rdf::kWildcardId, p_price, rdf::kWildcardId,
                       [&](const rdf::Triple& t) {
                         const rdf::TermView lit = ds.dict.term(t.o);
                         EXPECT_TRUE(lit.is_numeric());
                         auto value = lit.AsDouble();
                         ASSERT_TRUE(value.has_value());
                         EXPECT_GT(*value, 0.0);
                         ++checked;
                       });
  EXPECT_GT(checked, 0u);
}

TEST(BsbmGeneratorTest, RatingsInRange) {
  Dataset ds = Generate(SmallConfig());
  rdf::TermId p_rating = *ds.dict.FindIri(ds.vocab.rating);
  ds.store.ScanPattern(rdf::kWildcardId, p_rating, rdf::kWildcardId,
                       [&](const rdf::Triple& t) {
                         auto v = ds.dict.term(t.o).AsInteger();
                         ASSERT_TRUE(v.has_value());
                         EXPECT_GE(*v, 1);
                         EXPECT_LE(*v, 10);
                       });
}

TEST(BsbmGeneratorTest, ProductsShareFeaturesThroughHierarchy) {
  Dataset ds = Generate(SmallConfig());
  rdf::TermId p_feature = *ds.dict.FindIri(ds.vocab.product_feature);
  // Feature triples exist and some features are shared by many products
  // (those drawn from high-level pools).
  uint64_t total =
      ds.store.CountPattern(rdf::kWildcardId, p_feature, rdf::kWildcardId);
  EXPECT_GT(total, ds.products.size());  // multiple features per product
  uint64_t max_share = 0;
  for (rdf::TermId f : ds.features) {
    max_share = std::max(
        max_share, ds.store.CountPattern(rdf::kWildcardId, p_feature, f));
  }
  EXPECT_GT(max_share, 10u);
}

TEST(BsbmGeneratorTest, ScalesWithProductCount) {
  GeneratorConfig small = SmallConfig();
  GeneratorConfig large = SmallConfig();
  large.num_products = 900;
  Dataset a = Generate(small);
  Dataset b = Generate(large);
  EXPECT_GT(b.store.size(), 2 * a.store.size());
  EXPECT_EQ(b.products.size(), 900u);
}

TEST(BsbmGeneratorTest, TypeIdsAlignedWithTypes) {
  Dataset ds = Generate(SmallConfig());
  auto ids = ds.TypeIds();
  ASSERT_EQ(ids.size(), ds.types.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], ds.types[i].id);
  }
}

}  // namespace
}  // namespace rdfparams::bsbm

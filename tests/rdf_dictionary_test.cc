#include "rdf/dictionary.h"

#include <gtest/gtest.h>

namespace rdfparams::rdf {
namespace {

TEST(DictionaryTest, InternAssignsDenseIds) {
  Dictionary d;
  TermId a = d.InternIri("http://x/a");
  TermId b = d.InternIri("http://x/b");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(d.size(), 2u);
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  TermId a1 = d.InternIri("http://x/a");
  TermId a2 = d.InternIri("http://x/a");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DictionaryTest, DistinguishesTermKinds) {
  Dictionary d;
  TermId iri = d.Intern(Term::Iri("x"));
  TermId lit = d.Intern(Term::Literal("x"));
  TermId blank = d.Intern(Term::Blank("x"));
  EXPECT_NE(iri, lit);
  EXPECT_NE(iri, blank);
  EXPECT_NE(lit, blank);
}

TEST(DictionaryTest, DistinguishesDatatypeAndLang) {
  Dictionary d;
  TermId plain = d.Intern(Term::Literal("5"));
  TermId typed = d.Intern(Term::Integer(5));
  TermId lang = d.Intern(Term::LangLiteral("5", "en"));
  EXPECT_NE(plain, typed);
  EXPECT_NE(plain, lang);
}

TEST(DictionaryTest, LookupRoundTrip) {
  Dictionary d;
  Term t = Term::LangLiteral("hello", "en");
  TermId id = d.Intern(t);
  EXPECT_EQ(d.term(id), t);
  auto found = d.Find(t);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, id);
}

TEST(DictionaryTest, FindMissingReturnsNullopt) {
  Dictionary d;
  EXPECT_FALSE(d.Find(Term::Iri("http://nope")).has_value());
  EXPECT_FALSE(d.FindIri("http://nope").has_value());
}

TEST(DictionaryTest, ToStringHandlesBadIds) {
  Dictionary d;
  d.InternIri("http://x");
  EXPECT_EQ(d.ToString(0), "<http://x>");
  EXPECT_EQ(d.ToString(kInvalidTermId), "?");
  EXPECT_EQ(d.ToString(999), "<bad-id>");
}

TEST(DictionaryTest, ManyTermsStressConsistency) {
  Dictionary d;
  std::vector<TermId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(d.InternIri("http://x/" + std::to_string(i)));
  }
  EXPECT_EQ(d.size(), 10000u);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(d.term(ids[static_cast<size_t>(i)]).lexical,
              "http://x/" + std::to_string(i));
  }
}

}  // namespace
}  // namespace rdfparams::rdf

#include "rdf/ntriples.h"

#include <sstream>

#include <gtest/gtest.h>

namespace rdfparams::rdf {
namespace {

TEST(NTriplesParseTermTest, Iri) {
  size_t pos = 0;
  auto t = ParseNTriplesTerm("<http://x/a> rest", &pos);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_iri());
  EXPECT_EQ(t->lexical, "http://x/a");
  EXPECT_EQ(pos, 12u);
}

TEST(NTriplesParseTermTest, BlankNode) {
  size_t pos = 0;
  auto t = ParseNTriplesTerm("_:b42 .", &pos);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_blank());
  EXPECT_EQ(t->lexical, "b42");
}

TEST(NTriplesParseTermTest, PlainLiteral) {
  size_t pos = 0;
  auto t = ParseNTriplesTerm("\"hello world\"", &pos);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_literal());
  EXPECT_EQ(t->lexical, "hello world");
}

TEST(NTriplesParseTermTest, LangLiteral) {
  size_t pos = 0;
  auto t = ParseNTriplesTerm("\"bonjour\"@fr-CA", &pos);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->lang, "fr-CA");
}

TEST(NTriplesParseTermTest, TypedLiteral) {
  size_t pos = 0;
  auto t = ParseNTriplesTerm(
      "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>", &pos);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->AsInteger(), 5);
}

TEST(NTriplesParseTermTest, EscapedQuoteInsideLiteral) {
  size_t pos = 0;
  auto t = ParseNTriplesTerm(R"("say \"hi\" now")", &pos);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->lexical, "say \"hi\" now");
}

TEST(NTriplesParseTermTest, Malformed) {
  size_t pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("<unterminated", &pos).ok());
  pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("\"unterminated", &pos).ok());
  pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("", &pos).ok());
  pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("_x", &pos).ok());
  pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("<>", &pos).ok());
}

TEST(NTriplesDocTest, ParsesTriplesAndComments) {
  const char* doc = R"(# a comment
<http://x/s> <http://x/p> <http://x/o> .

<http://x/s> <http://x/p> "lit"@en .  # trailing comment
_:b <http://x/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
)";
  std::vector<std::string> triples;
  Status st = ParseNTriples(doc, [&](const Term& s, const Term& p,
                                     const Term& o) {
    triples.push_back(ToNTriplesLine(s, p, o));
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(triples.size(), 3u);
  EXPECT_EQ(triples[0], "<http://x/s> <http://x/p> <http://x/o> .");
}

TEST(NTriplesDocTest, ErrorsCarryLineNumbers) {
  Status st = ParseNTriples("<http://a> <http://b> <http://c> .\nbroken line\n",
                            [](const Term&, const Term&, const Term&) {});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 2"), std::string::npos);
}

TEST(NTriplesDocTest, RejectsLiteralSubject) {
  Status st = ParseNTriples("\"lit\" <http://p> <http://o> .",
                            [](const Term&, const Term&, const Term&) {});
  EXPECT_FALSE(st.ok());
}

TEST(NTriplesDocTest, RejectsNonIriPredicate) {
  Status st = ParseNTriples("<http://s> \"lit\" <http://o> .",
                            [](const Term&, const Term&, const Term&) {});
  EXPECT_FALSE(st.ok());
}

TEST(NTriplesDocTest, RejectsMissingDot) {
  Status st = ParseNTriples("<http://s> <http://p> <http://o>",
                            [](const Term&, const Term&, const Term&) {});
  EXPECT_FALSE(st.ok());
}

TEST(NTriplesLoadTest, LoadIntoStore) {
  const char* doc =
      "<http://x/a> <http://x/p> <http://x/b> .\n"
      "<http://x/b> <http://x/p> <http://x/c> .\n";
  Dictionary dict;
  TripleStore store;
  ASSERT_TRUE(LoadNTriples(doc, &dict, &store).ok());
  store.Finalize();
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(dict.size(), 4u);  // a, p, b, c
}

TEST(NTriplesWriteTest, RoundTrip) {
  const char* doc =
      "<http://x/a> <http://x/p> \"v\\\"1\" .\n"
      "<http://x/a> <http://x/q> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "_:b <http://x/p> \"text\"@en .\n";
  Dictionary dict;
  TripleStore store;
  ASSERT_TRUE(LoadNTriples(doc, &dict, &store).ok());
  store.Finalize();

  std::ostringstream out;
  ASSERT_TRUE(WriteNTriples(dict, store, out).ok());

  Dictionary dict2;
  TripleStore store2;
  ASSERT_TRUE(LoadNTriples(out.str(), &dict2, &store2).ok());
  store2.Finalize();
  EXPECT_EQ(store2.size(), store.size());

  std::ostringstream out2;
  ASSERT_TRUE(WriteNTriples(dict2, store2, out2).ok());
  // Canonical rendering is identical modulo dictionary ids, but since both
  // documents contain the same terms the sorted line sets must match.
  auto lines = [](std::string text) {
    std::vector<std::string> v;
    std::istringstream in(text);
    std::string l;
    while (std::getline(in, l)) v.push_back(l);
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(lines(out.str()), lines(out2.str()));
}

TEST(NTriplesWriteTest, RequiresFinalizedStore) {
  Dictionary dict;
  TripleStore store;
  store.Add(dict.InternIri("http://a"), dict.InternIri("http://b"),
            dict.InternIri("http://c"));
  std::ostringstream out;
  EXPECT_FALSE(WriteNTriples(dict, store, out).ok());
}

TEST(NTriplesFileTest, MissingFileFails) {
  Dictionary dict;
  TripleStore store;
  Status st = LoadNTriplesFile("/nonexistent/path.nt", &dict, &store);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace rdfparams::rdf

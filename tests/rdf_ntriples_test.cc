#include "rdf/ntriples.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace rdfparams::rdf {
namespace {

TEST(NTriplesParseTermTest, Iri) {
  size_t pos = 0;
  auto t = ParseNTriplesTerm("<http://x/a> rest", &pos);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_iri());
  EXPECT_EQ(t->lexical, "http://x/a");
  EXPECT_EQ(pos, 12u);
}

TEST(NTriplesParseTermTest, BlankNode) {
  size_t pos = 0;
  auto t = ParseNTriplesTerm("_:b42 .", &pos);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_blank());
  EXPECT_EQ(t->lexical, "b42");
}

TEST(NTriplesParseTermTest, PlainLiteral) {
  size_t pos = 0;
  auto t = ParseNTriplesTerm("\"hello world\"", &pos);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_literal());
  EXPECT_EQ(t->lexical, "hello world");
}

TEST(NTriplesParseTermTest, LangLiteral) {
  size_t pos = 0;
  auto t = ParseNTriplesTerm("\"bonjour\"@fr-CA", &pos);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->lang, "fr-CA");
}

TEST(NTriplesParseTermTest, TypedLiteral) {
  size_t pos = 0;
  auto t = ParseNTriplesTerm(
      "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>", &pos);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->AsInteger(), 5);
}

TEST(NTriplesParseTermTest, EscapedQuoteInsideLiteral) {
  size_t pos = 0;
  auto t = ParseNTriplesTerm(R"("say \"hi\" now")", &pos);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->lexical, "say \"hi\" now");
}

// Regression: IsPnChar allows '.', but a BLANK_NODE_LABEL cannot end with
// one — the trailing dot terminates the statement ("_:s <p> _:o." used to
// fail with "expected '.' after object").
TEST(NTriplesParseTermTest, BlankNodeLabelStopsBeforeTrailingDot) {
  size_t pos = 0;
  auto t = ParseNTriplesTerm("_:o.", &pos);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->lexical, "o");
  EXPECT_EQ(pos, 3u);  // the '.' is left for the statement parser

  pos = 0;
  t = ParseNTriplesTerm("_:a.b rest", &pos);  // interior dots are legal
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->lexical, "a.b");

  pos = 0;
  t = ParseNTriplesTerm("_:a...", &pos);  // a label cannot end in dots
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->lexical, "a");
  EXPECT_EQ(pos, 3u);
}

// Regression: language tags are LANGTAG = '@'[a-zA-Z]+('-'[a-zA-Z0-9]+)*;
// '_' and '.' (previously accepted via IsPnChar) must not be consumed.
TEST(NTriplesParseTermTest, LangTagRestrictedCharset) {
  size_t pos = 0;
  auto t = ParseNTriplesTerm("\"x\"@en_US", &pos);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->lang, "en");  // stops at '_'
  EXPECT_EQ(pos, 6u);

  pos = 0;
  t = ParseNTriplesTerm("\"x\"@en.", &pos);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->lang, "en");  // the '.' terminates the statement
  EXPECT_EQ(pos, 6u);

  pos = 0;
  t = ParseNTriplesTerm("\"x\"@fr-CA-1994 .", &pos);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->lang, "fr-CA-1994");

  pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("\"x\"@", &pos).ok());
  pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("\"x\"@en- ", &pos).ok());
}

TEST(NTriplesParseTermTest, Malformed) {
  size_t pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("<unterminated", &pos).ok());
  pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("\"unterminated", &pos).ok());
  pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("", &pos).ok());
  pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("_x", &pos).ok());
  pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("<>", &pos).ok());
}

TEST(NTriplesDocTest, ParsesTriplesAndComments) {
  const char* doc = R"(# a comment
<http://x/s> <http://x/p> <http://x/o> .

<http://x/s> <http://x/p> "lit"@en .  # trailing comment
_:b <http://x/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
)";
  std::vector<std::string> triples;
  Status st = ParseNTriples(doc, [&](const Term& s, const Term& p,
                                     const Term& o) {
    triples.push_back(ToNTriplesLine(s, p, o));
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(triples.size(), 3u);
  EXPECT_EQ(triples[0], "<http://x/s> <http://x/p> <http://x/o> .");
}

// Regression for the statement-level view of the two term fixes: a valid
// line whose blank-node object touches the terminating '.' must parse,
// and a lang tag containing '_' must be rejected at the line level.
TEST(NTriplesDocTest, BlankNodeObjectTouchingDot) {
  std::vector<std::string> triples;
  Status st = ParseNTriples(
      "_:s <http://x/p> _:o.\n",
      [&](const Term& s, const Term& p, const Term& o) {
        triples.push_back(ToNTriplesLine(s, p, o));
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0], "_:s <http://x/p> _:o .");
}

TEST(NTriplesDocTest, LangTagTouchingDot) {
  size_t count = 0;
  Status st = ParseNTriples(
      "<http://x/s> <http://x/p> \"chat\"@fr.\n",
      [&](const Term&, const Term&, const Term& o) {
        EXPECT_EQ(o.lang, "fr");
        ++count;
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(count, 1u);
}

TEST(NTriplesDocTest, RejectsUnderscoreLangTagLine) {
  Status st = ParseNTriples("<http://x/s> <http://x/p> \"x\"@en_US .\n",
                            [](const Term&, const Term&, const Term&) {});
  EXPECT_FALSE(st.ok());
}

TEST(NTriplesDocTest, CrlfLineEndings) {
  const char* doc =
      "<http://x/a> <http://x/p> <http://x/b> .\r\n"
      "# comment\r\n"
      "\r\n"
      "_:c <http://x/p> \"v\"@en .\r\n";
  std::vector<std::string> triples;
  Status st = ParseNTriples(doc, [&](const Term& s, const Term& p,
                                     const Term& o) {
    triples.push_back(ToNTriplesLine(s, p, o));
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(triples.size(), 2u);
  // No '\r' may leak into any lexical form.
  for (const std::string& t : triples) {
    EXPECT_EQ(t.find('\r'), std::string::npos) << t;
  }
  EXPECT_EQ(triples[1], "_:c <http://x/p> \"v\"@en .");
}

TEST(NTriplesDocTest, FirstLineOffsetShiftsReportedNumbers) {
  Status st = ParseNTriples("ok-is-not-a-term\n",
                            [](const Term&, const Term&, const Term&) {},
                            /*first_line=*/41);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 41"), std::string::npos) << st.message();
}

// Property test: canonical serialization must survive a parse round trip
// for adversarial lexical forms (escapes, CRLF bytes, unicode, controls).
TEST(NTriplesDocTest, TermRoundTripsThroughParser) {
  const std::vector<std::string> nasty = {
      "plain", "with \"quotes\"", "back\\slash", "tab\tand\nnewline",
      "cr\rlf", "héllo 世界", std::string("ctrl\x01\x1f"),
      "trailing backslash \\\\", "", "dot.end.", "a . b",
  };
  std::vector<Term> terms;
  for (const std::string& s : nasty) {
    terms.push_back(Term::Literal(s));
    terms.push_back(Term::LangLiteral(s, "en-US"));
    terms.push_back(Term::TypedLiteral(s, "http://x/dt"));
  }
  terms.push_back(Term::Iri("http://x/iri"));
  terms.push_back(Term::Blank("b.with.dots"));
  terms.push_back(Term::Integer(-7));
  terms.push_back(Term::Double(2.5));
  terms.push_back(Term::Boolean(true));
  for (const Term& term : terms) {
    std::string encoded = term.ToNTriples();
    size_t pos = 0;
    auto parsed = ParseNTriplesTerm(encoded, &pos);
    ASSERT_TRUE(parsed.ok()) << encoded << ": " << parsed.status().ToString();
    EXPECT_EQ(pos, encoded.size()) << encoded;
    EXPECT_EQ(*parsed, term) << encoded;
  }
}

TEST(NTriplesDocTest, ErrorsCarryLineNumbers) {
  Status st = ParseNTriples("<http://a> <http://b> <http://c> .\nbroken line\n",
                            [](const Term&, const Term&, const Term&) {});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 2"), std::string::npos);
}

TEST(NTriplesDocTest, RejectsLiteralSubject) {
  Status st = ParseNTriples("\"lit\" <http://p> <http://o> .",
                            [](const Term&, const Term&, const Term&) {});
  EXPECT_FALSE(st.ok());
}

TEST(NTriplesDocTest, RejectsNonIriPredicate) {
  Status st = ParseNTriples("<http://s> \"lit\" <http://o> .",
                            [](const Term&, const Term&, const Term&) {});
  EXPECT_FALSE(st.ok());
}

TEST(NTriplesDocTest, RejectsMissingDot) {
  Status st = ParseNTriples("<http://s> <http://p> <http://o>",
                            [](const Term&, const Term&, const Term&) {});
  EXPECT_FALSE(st.ok());
}

TEST(NTriplesLoadTest, LoadIntoStore) {
  const char* doc =
      "<http://x/a> <http://x/p> <http://x/b> .\n"
      "<http://x/b> <http://x/p> <http://x/c> .\n";
  Dictionary dict;
  TripleStore store;
  ASSERT_TRUE(LoadNTriples(doc, &dict, &store).ok());
  store.Finalize();
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(dict.size(), 4u);  // a, p, b, c
}

TEST(NTriplesWriteTest, RoundTrip) {
  const char* doc =
      "<http://x/a> <http://x/p> \"v\\\"1\" .\n"
      "<http://x/a> <http://x/q> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "_:b <http://x/p> \"text\"@en .\n";
  Dictionary dict;
  TripleStore store;
  ASSERT_TRUE(LoadNTriples(doc, &dict, &store).ok());
  store.Finalize();

  std::ostringstream out;
  ASSERT_TRUE(WriteNTriples(dict, store, out).ok());

  Dictionary dict2;
  TripleStore store2;
  ASSERT_TRUE(LoadNTriples(out.str(), &dict2, &store2).ok());
  store2.Finalize();
  EXPECT_EQ(store2.size(), store.size());

  std::ostringstream out2;
  ASSERT_TRUE(WriteNTriples(dict2, store2, out2).ok());
  // Canonical rendering is identical modulo dictionary ids, but since both
  // documents contain the same terms the sorted line sets must match.
  auto lines = [](std::string text) {
    std::vector<std::string> v;
    std::istringstream in(text);
    std::string l;
    while (std::getline(in, l)) v.push_back(l);
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(lines(out.str()), lines(out2.str()));
}

TEST(NTriplesWriteTest, RequiresFinalizedStore) {
  Dictionary dict;
  TripleStore store;
  store.Add(dict.InternIri("http://a"), dict.InternIri("http://b"),
            dict.InternIri("http://c"));
  std::ostringstream out;
  EXPECT_FALSE(WriteNTriples(dict, store, out).ok());
}

// The file loader reads through util::ReadFileToString — one buffer, no
// stringstream double-copy — and must be byte-faithful (CRLF included).
TEST(NTriplesFileTest, SingleBufferFileLoadMatchesInMemoryLoad) {
  const std::string doc =
      "<http://x/a> <http://x/p> \"v1\" .\r\n"
      "<http://x/a> <http://x/q> <http://x/b> .\n"
      "_:n <http://x/p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
  const std::string path =
      ::testing::TempDir() + "/rdfparams_single_buffer_test.nt";
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << doc;
    ASSERT_TRUE(os.good());
  }
  auto bytes = util::ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, doc);  // exact bytes, '\r' preserved

  Dictionary file_dict, mem_dict;
  TripleStore file_store, mem_store;
  ASSERT_TRUE(LoadNTriplesFile(path, &file_dict, &file_store).ok());
  ASSERT_TRUE(LoadNTriples(doc, &mem_dict, &mem_store).ok());
  ASSERT_EQ(file_dict.size(), mem_dict.size());
  for (TermId id = 0; id < file_dict.size(); ++id) {
    EXPECT_EQ(file_dict.term(id), mem_dict.term(id));
  }
  file_store.Finalize();
  mem_store.Finalize();
  EXPECT_EQ(file_store.size(), mem_store.size());
  std::remove(path.c_str());
}

TEST(NTriplesFileTest, MissingFileFails) {
  Dictionary dict;
  TripleStore store;
  Status st = LoadNTriplesFile("/nonexistent/path.nt", &dict, &store);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace rdfparams::rdf

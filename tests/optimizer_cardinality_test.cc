#include "optimizer/cardinality.h"

#include <gtest/gtest.h>

#include "rdf/turtle.h"
#include "sparql/parser.h"

namespace rdfparams::opt {
namespace {

class CardinalityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 3 people in China named Li, 1 named John; 2 in USA named John.
    const char* doc = R"(
@prefix sn: <http://sn/> .
@prefix c: <http://c/> .
sn:p1 sn:firstName "Li" ; sn:livesIn c:China .
sn:p2 sn:firstName "Li" ; sn:livesIn c:China .
sn:p3 sn:firstName "Li" ; sn:livesIn c:China .
sn:p4 sn:firstName "John" ; sn:livesIn c:China .
sn:p5 sn:firstName "John" ; sn:livesIn c:USA .
sn:p6 sn:firstName "John" ; sn:livesIn c:USA .
)";
    ASSERT_TRUE(rdf::LoadTurtle(doc, &dict_, &store_).ok());
    store_.Finalize();
  }

  sparql::SelectQuery Parse(const std::string& text) {
    auto q = sparql::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  rdf::Dictionary dict_;
  rdf::TripleStore store_;
};

TEST_F(CardinalityTest, LeafCardinalitiesExact) {
  CardinalityEstimator est(store_, dict_);
  auto q = Parse(
      "SELECT * WHERE { ?p <http://sn/firstName> \"Li\" . "
      "?p <http://sn/livesIn> <http://c/China> . }");
  auto li = est.EstimatePattern(q, 0);
  ASSERT_TRUE(li.ok());
  EXPECT_DOUBLE_EQ(li->cardinality, 3.0);
  auto china = est.EstimatePattern(q, 1);
  ASSERT_TRUE(china.ok());
  EXPECT_DOUBLE_EQ(china->cardinality, 4.0);
}

TEST_F(CardinalityTest, AbsentConstantGivesZero) {
  CardinalityEstimator est(store_, dict_);
  auto q = Parse(
      "SELECT * WHERE { ?p <http://sn/firstName> \"Zorro\" . }");
  auto info = est.EstimatePattern(q, 0);
  ASSERT_TRUE(info.ok());
  EXPECT_DOUBLE_EQ(info->cardinality, 0.0);
}

TEST_F(CardinalityTest, DistinctCountsPerPredicate) {
  CardinalityEstimator est(store_, dict_);
  auto q = Parse("SELECT * WHERE { ?p <http://sn/firstName> ?n . }");
  auto info = est.EstimatePattern(q, 0);
  ASSERT_TRUE(info.ok());
  EXPECT_DOUBLE_EQ(info->cardinality, 6.0);
  EXPECT_DOUBLE_EQ(info->var_distinct.at("p"), 6.0);
  EXPECT_DOUBLE_EQ(info->var_distinct.at("n"), 2.0);  // "Li", "John"
}

TEST_F(CardinalityTest, JoinFormulaContainment) {
  RelationInfo a;
  a.cardinality = 100;
  a.var_distinct["x"] = 10;
  RelationInfo b;
  b.cardinality = 50;
  b.var_distinct["x"] = 25;
  b.var_distinct["y"] = 50;
  RelationInfo j = CardinalityEstimator::EstimateJoin(a, b);
  // 100 * 50 / max(10, 25) = 200.
  EXPECT_DOUBLE_EQ(j.cardinality, 200.0);
  EXPECT_DOUBLE_EQ(j.var_distinct.at("x"), 10.0);
  EXPECT_DOUBLE_EQ(j.var_distinct.at("y"), 50.0);
}

TEST_F(CardinalityTest, CrossProductWhenNoSharedVars) {
  RelationInfo a;
  a.cardinality = 10;
  a.var_distinct["x"] = 10;
  RelationInfo b;
  b.cardinality = 20;
  b.var_distinct["y"] = 20;
  RelationInfo j = CardinalityEstimator::EstimateJoin(a, b);
  EXPECT_DOUBLE_EQ(j.cardinality, 200.0);
}

TEST_F(CardinalityTest, SharedVarsSorted) {
  RelationInfo a;
  a.var_distinct["b"] = 1;
  a.var_distinct["a"] = 1;
  RelationInfo b;
  b.var_distinct["a"] = 1;
  b.var_distinct["b"] = 1;
  EXPECT_EQ(CardinalityEstimator::SharedVars(a, b),
            (std::vector<std::string>{"a", "b"}));
}

TEST_F(CardinalityTest, ExactPairJoinCountCorrelated) {
  CardinalityEstimator est(store_, dict_);
  auto q = Parse(
      "SELECT * WHERE { ?p <http://sn/firstName> \"Li\" . "
      "?p <http://sn/livesIn> <http://c/China> . }");
  auto exact = est.ExactPairJoinCount(q, 0, 1);
  ASSERT_TRUE(exact.has_value());
  EXPECT_DOUBLE_EQ(*exact, 3.0);  // all three Lis live in China

  // John x China = 1 (anti-correlated), which the formula would miss.
  auto q2 = Parse(
      "SELECT * WHERE { ?p <http://sn/firstName> \"John\" . "
      "?p <http://sn/livesIn> <http://c/China> . }");
  auto exact2 = est.ExactPairJoinCount(q2, 0, 1);
  ASSERT_TRUE(exact2.has_value());
  EXPECT_DOUBLE_EQ(*exact2, 1.0);
}

TEST_F(CardinalityTest, ExactPairJoinHandlesAbsentConstant) {
  CardinalityEstimator est(store_, dict_);
  auto q = Parse(
      "SELECT * WHERE { ?p <http://sn/firstName> \"Nobody\" . "
      "?p <http://sn/livesIn> <http://c/China> . }");
  auto exact = est.ExactPairJoinCount(q, 0, 1);
  ASSERT_TRUE(exact.has_value());
  EXPECT_DOUBLE_EQ(*exact, 0.0);
}

TEST_F(CardinalityTest, ExactPairJoinRejectsNoSharedVar) {
  CardinalityEstimator est(store_, dict_);
  auto q = Parse(
      "SELECT * WHERE { ?p <http://sn/firstName> ?n . "
      "?q <http://sn/livesIn> ?c . }");
  EXPECT_FALSE(est.ExactPairJoinCount(q, 0, 1).has_value());
}

TEST_F(CardinalityTest, ExactPairJoinWithMultiplicities) {
  // Join on object-to-subject chain with duplicate values.
  rdf::Dictionary dict;
  rdf::TripleStore store;
  const char* doc = R"(
@prefix x: <http://x/> .
x:a x:p x:m .
x:b x:p x:m .
x:m x:q x:z1 .
x:m x:q x:z2 .
x:m x:q x:z3 .
)";
  ASSERT_TRUE(rdf::LoadTurtle(doc, &dict, &store).ok());
  store.Finalize();
  CardinalityEstimator est(store, dict);
  auto q = sparql::ParseQuery(
      "SELECT * WHERE { ?s <http://x/p> ?m . ?m <http://x/q> ?z . }");
  ASSERT_TRUE(q.ok());
  auto exact = est.ExactPairJoinCount(*q, 0, 1);
  ASSERT_TRUE(exact.has_value());
  EXPECT_DOUBLE_EQ(*exact, 6.0);  // 2 subjects x 3 objects through m
}

TEST_F(CardinalityTest, FilterSelectivityHeuristics) {
  EXPECT_DOUBLE_EQ(FilterSelectivity(sparql::CompareOp::kEq, 10), 0.1);
  EXPECT_DOUBLE_EQ(FilterSelectivity(sparql::CompareOp::kNe, 10), 0.9);
  EXPECT_DOUBLE_EQ(FilterSelectivity(sparql::CompareOp::kLt, 10), 1.0 / 3);
  EXPECT_DOUBLE_EQ(FilterSelectivity(sparql::CompareOp::kEq, 0), 1.0);
}

TEST_F(CardinalityTest, UnboundParameterIsError) {
  CardinalityEstimator est(store_, dict_);
  auto q = Parse("SELECT * WHERE { ?p <http://sn/firstName> %name . }");
  EXPECT_FALSE(est.EstimatePattern(q, 0).ok());
}

TEST_F(CardinalityTest, PatternIndexOutOfRange) {
  CardinalityEstimator est(store_, dict_);
  auto q = Parse("SELECT * WHERE { ?p <http://sn/firstName> ?n . }");
  EXPECT_FALSE(est.EstimatePattern(q, 5).ok());
}

}  // namespace
}  // namespace rdfparams::opt

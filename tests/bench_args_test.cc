// Regression tests for bench::ParseBenchArgs, the shared argv handling
// for every bench harness. The hand-rolled copies it replaced had
// drifted: one passed argc-1/argv+1 to FlagParser::Parse (which already
// skips argv[0]) and silently dropped the first flag; others swallowed
// parse errors or returned success for `--help --bogus`.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "../bench/bench_common.h"
#include "util/flags.h"

namespace rdfparams {
namespace {

/// Owns mutable argv storage for one ParseBenchArgs call.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    for (std::string& s : strings_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> ptrs_;
};

TEST(BenchArgsTest, FirstFlagIsNotDropped) {
  // The historical bug: Parse already skips argv[0], so an extra +1
  // offset made the flag right after the program name vanish.
  int64_t products = 6000;
  util::FlagParser flags;
  flags.AddInt64("products", &products, "scale");
  Argv a({"bench_x", "--products=123"});
  EXPECT_EQ(bench::ParseBenchArgs(a.argc(), a.argv(), &flags), -1);
  EXPECT_EQ(products, 123);
}

TEST(BenchArgsTest, SpaceSeparatedValueForm) {
  int64_t seed = 42;
  util::FlagParser flags;
  flags.AddInt64("seed", &seed, "seed");
  Argv a({"bench_x", "--seed", "7"});
  EXPECT_EQ(bench::ParseBenchArgs(a.argc(), a.argv(), &flags), -1);
  EXPECT_EQ(seed, 7);
}

TEST(BenchArgsTest, AllFlagsParsedTogether) {
  int64_t products = 6000;
  int64_t seed = 42;
  util::FlagParser flags;
  flags.AddInt64("products", &products, "scale");
  flags.AddInt64("seed", &seed, "seed");
  Argv a({"bench_x", "--products=10", "--seed=11"});
  EXPECT_EQ(bench::ParseBenchArgs(a.argc(), a.argv(), &flags), -1);
  EXPECT_EQ(products, 10);
  EXPECT_EQ(seed, 11);
}

TEST(BenchArgsTest, NoArgsContinues) {
  util::FlagParser flags;
  Argv a({"bench_x"});
  EXPECT_EQ(bench::ParseBenchArgs(a.argc(), a.argv(), &flags), -1);
}

TEST(BenchArgsTest, HelpExitsSuccess) {
  int64_t products = 6000;
  util::FlagParser flags;
  flags.AddInt64("products", &products, "scale");
  Argv a({"bench_x", "--help"});
  EXPECT_EQ(bench::ParseBenchArgs(a.argc(), a.argv(), &flags), 0);
}

TEST(BenchArgsTest, UnknownFlagExitsFailure) {
  util::FlagParser flags;
  Argv a({"bench_x", "--bogus=1"});
  EXPECT_EQ(bench::ParseBenchArgs(a.argc(), a.argv(), &flags), 1);
}

TEST(BenchArgsTest, BadValueExitsFailure) {
  int64_t products = 6000;
  util::FlagParser flags;
  flags.AddInt64("products", &products, "scale");
  Argv a({"bench_x", "--products=lots"});
  EXPECT_EQ(bench::ParseBenchArgs(a.argc(), a.argv(), &flags), 1);
}

TEST(BenchArgsTest, ErrorWinsOverHelp) {
  // `--help --bogus` used to exit 0 in the drifted copies; a parse error
  // must dominate so CI scripts never mistake a typo for success.
  util::FlagParser flags;
  Argv a({"bench_x", "--help", "--bogus"});
  EXPECT_EQ(bench::ParseBenchArgs(a.argc(), a.argv(), &flags), 1);
}

}  // namespace
}  // namespace rdfparams

// Differential harness for the batched classification pipeline: the
// signature-deduped strategy and the incremental ClassificationSession
// must be byte-identical — classes, fractions, representatives,
// class_of_candidate — to the per-candidate reference at 1/2/4/8 threads,
// including the grow-the-budget path, while actually saving DP runs on
// skewed domains.
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bsbm/queries.h"
#include "core/classification_session.h"
#include "core/plan_classifier.h"
#include "sparql/query_template.h"
#include "test_store.h"

namespace rdfparams::core {
namespace {

/// Exact equality on every field of the result (doubles compared bitwise
/// through ==; the determinism contract promises identical bits).
void ExpectIdentical(const Classification& a, const Classification& b,
                     const std::string& label) {
  ASSERT_EQ(a.num_candidates, b.num_candidates) << label;
  ASSERT_EQ(a.classes.size(), b.classes.size()) << label;
  EXPECT_EQ(a.class_of_candidate, b.class_of_candidate) << label;
  for (size_t i = 0; i < a.classes.size(); ++i) {
    const PlanClass& x = a.classes[i];
    const PlanClass& y = b.classes[i];
    EXPECT_EQ(x.fingerprint, y.fingerprint) << label << " class " << i;
    EXPECT_EQ(x.cost_bucket, y.cost_bucket) << label << " class " << i;
    EXPECT_EQ(x.min_cout, y.min_cout) << label << " class " << i;
    EXPECT_EQ(x.max_cout, y.max_cout) << label << " class " << i;
    EXPECT_EQ(x.fraction, y.fraction) << label << " class " << i;
    EXPECT_EQ(x.members, y.members) << label << " class " << i;
    EXPECT_EQ(x.representative, y.representative) << label << " class " << i;
  }
}

class ClassifyBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new bsbm::Dataset(test::MakeMiniBsbm());
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static bsbm::Dataset* ds_;
};

bsbm::Dataset* ClassifyBatchTest::ds_ = nullptr;

ClassifyOptions Opt(ClassifyStrategy strategy, int threads,
                    uint64_t max_candidates = 2000) {
  ClassifyOptions options;
  options.strategy = strategy;
  options.threads = threads;
  options.max_candidates = max_candidates;
  return options;
}

TEST_F(ClassifyBatchTest, BatchedIdenticalToPerCandidateAcrossThreads) {
  auto q4 = bsbm::MakeQ4(*ds_);
  ParameterDomain domain;
  domain.AddSingle("ProductType", bsbm::TypeDomain(*ds_));

  auto reference = ClassifyParameters(
      q4, domain, ds_->store, ds_->dict,
      Opt(ClassifyStrategy::kPerCandidate, 1));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (int threads : {1, 2, 4, 8}) {
    ClassifyStats stats;
    ClassifyOptions options = Opt(ClassifyStrategy::kBatched, threads);
    options.stats = &stats;
    auto batched = ClassifyParameters(q4, domain, ds_->store, ds_->dict,
                                      options);
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    ExpectIdentical(*reference, *batched,
                    "threads=" + std::to_string(threads));
    EXPECT_EQ(stats.num_candidates, reference->num_candidates);
    EXPECT_EQ(stats.dp_runs + stats.dp_runs_saved, stats.num_candidates);
    EXPECT_EQ(stats.dp_runs, stats.distinct_signatures);
    EXPECT_GT(stats.batched_counts, 0u);
  }
}

TEST_F(ClassifyBatchTest, TwoParameterTemplateIdentical) {
  // Q1 binds %type and %feature in different patterns: the domain is a
  // cross product and both patterns are batch-counted independently.
  auto q1 = bsbm::MakeQ1(*ds_);
  ParameterDomain domain;
  domain.AddSingle("type", bsbm::TypeDomain(*ds_));
  std::vector<rdf::TermId> features = bsbm::FeatureDomain(*ds_);
  features.resize(std::min<size_t>(features.size(), 12));
  domain.AddSingle("feature", features);

  auto reference = ClassifyParameters(
      q1, domain, ds_->store, ds_->dict,
      Opt(ClassifyStrategy::kPerCandidate, 1, 500));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (int threads : {1, 4}) {
    auto batched =
        ClassifyParameters(q1, domain, ds_->store, ds_->dict,
                           Opt(ClassifyStrategy::kBatched, threads, 500));
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    ExpectIdentical(*reference, *batched,
                    "q1 threads=" + std::to_string(threads));
  }
}

TEST(ClassifyBatchFallbackTest, TwoParametersInOnePatternIdentical) {
  // Both slots of one pattern vary per candidate: the prefill cannot
  // batch that pattern (it falls back to on-demand cached probes), but
  // the signature dedup must still be byte-identical.
  rdf::Dictionary dict;
  rdf::TripleStore store;
  std::string doc = "@prefix x: <http://x/> .\n";
  for (int i = 0; i < 12; ++i) {
    doc += "x:p" + std::to_string(i) + " x:knows x:p" +
           std::to_string((i + 1) % 12) + " .\n";
    doc += "x:p" + std::to_string(i) + " x:age " + std::to_string(20 + i % 3) +
           " .\n";
  }
  ASSERT_TRUE(rdf::LoadTurtle(doc, &dict, &store).ok());
  store.Finalize();

  auto tmpl = sparql::QueryTemplate::Parse("pair", R"(
PREFIX x: <http://x/>
SELECT ?a WHERE {
  %a x:knows %b .
  %a x:age ?a .
}
)");
  ASSERT_TRUE(tmpl.ok()) << tmpl.status().ToString();

  std::vector<std::vector<rdf::TermId>> tuples;
  for (int i = 0; i < 12; ++i) {
    auto a = dict.FindIri("http://x/p" + std::to_string(i));
    auto b = dict.FindIri("http://x/p" + std::to_string((i + 1) % 12));
    ASSERT_TRUE(a.has_value() && b.has_value());
    tuples.push_back({*a, *b});
  }
  ParameterDomain domain;
  domain.AddTuples({"a", "b"}, tuples);

  auto reference =
      ClassifyParameters(*tmpl, domain, store, dict,
                         Opt(ClassifyStrategy::kPerCandidate, 1));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ClassifyStats stats;
  ClassifyOptions options = Opt(ClassifyStrategy::kBatched, 2);
  options.stats = &stats;
  auto batched = ClassifyParameters(*tmpl, domain, store, dict, options);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ExpectIdentical(*reference, *batched, "two-params-one-pattern");
  // Every candidate ring position is structurally identical: the dedup
  // must collapse them to few signatures.
  EXPECT_LT(stats.dp_runs, stats.num_candidates);
  EXPECT_GT(stats.dp_runs_saved, 0u);
}

TEST(ClassifyBatchDedupTest, SkewedDomainCollapsesToOneSignature) {
  // Three types with exactly 10 members each: identical leaf counts and
  // pair-join counts => one signature, one DP run, two saved.
  rdf::Dictionary dict;
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::LoadTurtle(test::ItemScoreTurtle(30), &dict, &store).ok());
  store.Finalize();

  auto tmpl = sparql::QueryTemplate::Parse("skew", R"(
PREFIX x: <http://x/>
SELECT ?i WHERE {
  ?i x:type %t .
  ?i x:score ?s .
}
)");
  ASSERT_TRUE(tmpl.ok()) << tmpl.status().ToString();
  ParameterDomain domain;
  std::vector<rdf::TermId> types;
  for (int t = 0; t < 3; ++t) {
    auto id = dict.FindIri("http://x/T" + std::to_string(t));
    ASSERT_TRUE(id.has_value());
    types.push_back(*id);
  }
  domain.AddSingle("t", types);

  ClassifyStats stats;
  ClassifyOptions options = Opt(ClassifyStrategy::kBatched, 1);
  options.stats = &stats;
  auto batched = ClassifyParameters(*tmpl, domain, store, dict, options);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  EXPECT_EQ(stats.num_candidates, 3u);
  EXPECT_EQ(stats.distinct_signatures, 1u);
  EXPECT_EQ(stats.dp_runs, 1u);
  EXPECT_EQ(stats.dp_runs_saved, 2u);

  auto reference = ClassifyParameters(
      *tmpl, domain, store, dict, Opt(ClassifyStrategy::kPerCandidate, 1));
  ASSERT_TRUE(reference.ok());
  ExpectIdentical(*reference, *batched, "skewed");
}

TEST_F(ClassifyBatchTest, SessionGrowingBudgetIdenticalToFreshRuns) {
  // The ROADMAP case: grow max_candidates across one session; every
  // intermediate result must equal a fresh per-candidate classification
  // with the same budget, and the growth must reuse earlier work.
  auto q4 = bsbm::MakeQ4(*ds_);
  ParameterDomain domain;
  domain.AddSingle("ProductType", bsbm::TypeDomain(*ds_));
  const uint64_t full = bsbm::TypeDomain(*ds_).size();

  for (int threads : {1, 4}) {
    ClassificationSession session(q4, ds_->store, ds_->dict,
                                  Opt(ClassifyStrategy::kBatched, threads));
    uint64_t previous_memo = 0;
    for (uint64_t budget : {full / 4, full / 2, full, full + 100}) {
      if (budget == 0) continue;
      auto incremental = session.Classify(domain, budget);
      ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
      auto reference = ClassifyParameters(
          q4, domain, ds_->store, ds_->dict,
          Opt(ClassifyStrategy::kPerCandidate, 1, budget));
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();
      ExpectIdentical(*reference, *incremental,
                      "budget=" + std::to_string(budget) +
                          " threads=" + std::to_string(threads));
      EXPECT_GE(session.memoized_bindings(), previous_memo);
      previous_memo = session.memoized_bindings();
    }
    // Growing to the full domain twice: the second call is pure reuse.
    auto again = session.Classify(domain, full + 100);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(session.last_stats().reused_candidates, full);
    EXPECT_EQ(session.last_stats().dp_runs, 0u);
    EXPECT_EQ(session.last_stats().dp_runs_saved, full);
  }
}

TEST_F(ClassifyBatchTest, SessionPartialOverlapBudgets) {
  // Budgets below the domain size enumerate uniformly spaced subsets that
  // only partially overlap; the binding-keyed memo must still reproduce
  // fresh results exactly while reusing the overlap.
  auto q4 = bsbm::MakeQ4(*ds_);
  ParameterDomain domain;
  domain.AddSingle("ProductType", bsbm::TypeDomain(*ds_));
  const uint64_t full = bsbm::TypeDomain(*ds_).size();
  ASSERT_GT(full, 8u);

  ClassificationSession session(q4, ds_->store, ds_->dict,
                                Opt(ClassifyStrategy::kBatched, 2));
  for (uint64_t budget : {full / 5, full / 3, full / 2}) {
    auto incremental = session.Classify(domain, budget);
    ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
    auto reference = ClassifyParameters(
        q4, domain, ds_->store, ds_->dict,
        Opt(ClassifyStrategy::kPerCandidate, 1, budget));
    ASSERT_TRUE(reference.ok());
    ExpectIdentical(*reference, *incremental,
                    "overlap budget=" + std::to_string(budget));
  }
}

TEST_F(ClassifyBatchTest, ErrorParityOnMismatchedDomain) {
  auto q4 = bsbm::MakeQ4(*ds_);
  ParameterDomain domain;
  domain.AddSingle("WrongName", bsbm::TypeDomain(*ds_));
  auto per_candidate = ClassifyParameters(
      q4, domain, ds_->store, ds_->dict,
      Opt(ClassifyStrategy::kPerCandidate, 1));
  auto batched = ClassifyParameters(q4, domain, ds_->store, ds_->dict,
                                    Opt(ClassifyStrategy::kBatched, 1));
  ASSERT_FALSE(per_candidate.ok());
  ASSERT_FALSE(batched.ok());
  EXPECT_EQ(per_candidate.status().ToString(), batched.status().ToString());
}

}  // namespace
}  // namespace rdfparams::core

// Determinism contract of the parallel curation pipeline: every thread
// count must produce byte-identical classifications (class order, members,
// representatives) and identical workload observations (modulo the
// wall-clock `seconds` field, which is a measurement, not a value).
#include <gtest/gtest.h>

#include "bsbm/queries.h"
#include "core/plan_classifier.h"
#include "core/workload.h"
#include "test_store.h"

namespace rdfparams::core {
namespace {

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new bsbm::Dataset(test::MakeMiniBsbm());
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static bsbm::Dataset* ds_;
};

bsbm::Dataset* ParallelDeterminismTest::ds_ = nullptr;

Classification ClassifyWithThreads(bsbm::Dataset* ds, int threads) {
  auto q4 = bsbm::MakeQ4(*ds);
  ParameterDomain domain;
  domain.AddSingle("ProductType", bsbm::TypeDomain(*ds));
  ClassifyOptions options;
  options.threads = threads;
  auto result = ClassifyParameters(q4, domain, ds->store, ds->dict, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST_F(ParallelDeterminismTest, ClassificationIdenticalAcrossThreadCounts) {
  Classification serial = ClassifyWithThreads(ds_, 1);
  for (int threads : {2, 8}) {
    Classification parallel = ClassifyWithThreads(ds_, threads);
    ASSERT_EQ(serial.num_candidates, parallel.num_candidates);
    ASSERT_EQ(serial.classes.size(), parallel.classes.size())
        << "threads=" << threads;
    EXPECT_EQ(serial.class_of_candidate, parallel.class_of_candidate);
    for (size_t i = 0; i < serial.classes.size(); ++i) {
      const PlanClass& a = serial.classes[i];
      const PlanClass& b = parallel.classes[i];
      EXPECT_EQ(a.fingerprint, b.fingerprint) << "class " << i;
      EXPECT_EQ(a.cost_bucket, b.cost_bucket) << "class " << i;
      EXPECT_DOUBLE_EQ(a.min_cout, b.min_cout) << "class " << i;
      EXPECT_DOUBLE_EQ(a.max_cout, b.max_cout) << "class " << i;
      EXPECT_DOUBLE_EQ(a.fraction, b.fraction) << "class " << i;
      EXPECT_EQ(a.members, b.members) << "class " << i;
      EXPECT_EQ(a.representative, b.representative) << "class " << i;
    }
  }
}

TEST_F(ParallelDeterminismTest, WorkloadObservationsIdenticalAcrossThreads) {
  auto q4 = bsbm::MakeQ4(*ds_);
  std::vector<sparql::ParameterBinding> bindings;
  for (rdf::TermId type : bsbm::TypeDomain(*ds_)) {
    bindings.push_back(sparql::ParameterBinding{{type}});
    if (bindings.size() == 40) break;
  }

  // Read-only runner: the shared dictionary must never be mutated.
  size_t dict_size_before = ds_->dict.size();
  WorkloadRunner runner(ds_->store, static_cast<const rdf::Dictionary&>(
                                        ds_->dict));

  WorkloadOptions serial_options;
  serial_options.threads = 1;
  auto serial = runner.RunAll(q4, bindings, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  WorkloadOptions parallel_options;
  parallel_options.threads = 8;
  auto parallel = runner.RunAll(q4, bindings, parallel_options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(ds_->dict.size(), dict_size_before);
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    const RunObservation& a = (*serial)[i];
    const RunObservation& b = (*parallel)[i];
    EXPECT_EQ(a.binding, b.binding) << "binding " << i;
    EXPECT_EQ(a.observed_cout, b.observed_cout) << "binding " << i;
    EXPECT_DOUBLE_EQ(a.est_cout, b.est_cout) << "binding " << i;
    EXPECT_DOUBLE_EQ(a.est_cardinality, b.est_cardinality) << "binding " << i;
    EXPECT_EQ(a.fingerprint, b.fingerprint) << "binding " << i;
    EXPECT_EQ(a.result_rows, b.result_rows) << "binding " << i;
  }
}

TEST_F(ParallelDeterminismTest, IntraQueryParallelismPreservesObservations) {
  // Both parallel axes at once: bindings spread across RunAll workers AND
  // each query executed with intra-query exec-threads. Observations must
  // still match the fully serial run byte for byte.
  auto q4 = bsbm::MakeQ4(*ds_);
  std::vector<sparql::ParameterBinding> bindings;
  for (rdf::TermId type : bsbm::TypeDomain(*ds_)) {
    bindings.push_back(sparql::ParameterBinding{{type}});
    if (bindings.size() == 20) break;
  }
  WorkloadRunner runner(ds_->store, static_cast<const rdf::Dictionary&>(
                                        ds_->dict));

  WorkloadOptions serial_options;  // threads = 1, exec.threads = 1
  auto serial = runner.RunAll(q4, bindings, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  WorkloadOptions combined_options;
  combined_options.threads = 2;
  combined_options.exec.threads = 4;
  combined_options.exec.morsel_size = 64;
  auto combined = runner.RunAll(q4, bindings, combined_options);
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();

  ASSERT_EQ(serial->size(), combined->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    const RunObservation& a = (*serial)[i];
    const RunObservation& b = (*combined)[i];
    EXPECT_EQ(a.binding, b.binding) << "binding " << i;
    EXPECT_EQ(a.observed_cout, b.observed_cout) << "binding " << i;
    EXPECT_DOUBLE_EQ(a.est_cout, b.est_cout) << "binding " << i;
    EXPECT_EQ(a.fingerprint, b.fingerprint) << "binding " << i;
    EXPECT_EQ(a.result_rows, b.result_rows) << "binding " << i;
  }
}

TEST_F(ParallelDeterminismTest, ParallelMatchesLegacySerialRunner) {
  // The mutable-dictionary RunOnce path and the scratch-overlay RunAll
  // path must agree on every deterministic observation field.
  auto q4 = bsbm::MakeQ4(*ds_);
  std::vector<sparql::ParameterBinding> bindings;
  for (rdf::TermId type : bsbm::TypeDomain(*ds_)) {
    bindings.push_back(sparql::ParameterBinding{{type}});
    if (bindings.size() == 10) break;
  }

  rdf::Dictionary* mut_dict = &ds_->dict;
  WorkloadRunner legacy(ds_->store, mut_dict);
  WorkloadOptions parallel_options;
  parallel_options.threads = 4;
  auto parallel = legacy.RunAll(q4, bindings, parallel_options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  for (size_t i = 0; i < bindings.size(); ++i) {
    auto one = legacy.RunOnce(q4, bindings[i]);
    ASSERT_TRUE(one.ok()) << one.status().ToString();
    const RunObservation& a = *one;
    const RunObservation& b = (*parallel)[i];
    EXPECT_EQ(a.observed_cout, b.observed_cout) << "binding " << i;
    EXPECT_DOUBLE_EQ(a.est_cout, b.est_cout) << "binding " << i;
    EXPECT_EQ(a.fingerprint, b.fingerprint) << "binding " << i;
    EXPECT_EQ(a.result_rows, b.result_rows) << "binding " << i;
  }
}

}  // namespace
}  // namespace rdfparams::core

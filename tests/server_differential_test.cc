// Differential proof for the workload daemon: the bytes a loopback server
// returns for classify / run / explain must be identical to direct
// in-process calls formatted with the same protocol formatters — swept
// over server thread counts {1, 2, 4, 8} and client concurrency {1, 8}.
// This is the server's determinism contract: serving adds transport and
// scheduling, never different answers.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bsbm/queries.h"
#include "core/plan_classifier.h"
#include "core/workload.h"
#include "optimizer/optimizer.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/service.h"
#include "server/workbench.h"
#include "util/rng.h"

namespace rdfparams::server {
namespace {

constexpr int64_t kQueries[] = {1, 2, 4};
constexpr int64_t kMaxCandidates = 120;
constexpr int64_t kRunN = 12;
constexpr int64_t kSeed = 7;

struct Expected {
  std::string classify;
  std::string run;
  std::string explain;
};

class ServerDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.products = 300;
    auto wb = BuildWorkbench(config);
    ASSERT_TRUE(wb.ok()) << wb.status().ToString();
    wb_ = new Workbench(std::move(wb).value());
    expected_ = new std::map<int64_t, Expected>();
    for (int64_t query : kQueries) {
      (*expected_)[query] = ComputeExpected(query);
    }
  }

  static void TearDownTestSuite() {
    delete expected_;
    delete wb_;
    expected_ = nullptr;
    wb_ = nullptr;
  }

  /// The in-process half of the differential: one-shot pipeline calls at
  /// the server's pinned options, rendered with the shared formatters.
  static Expected ComputeExpected(int64_t query) {
    Expected out;
    auto tmpl = PickTemplate(*wb_, query);
    EXPECT_TRUE(tmpl.ok()) << tmpl.status().ToString();
    auto domain = MakeDomain(*wb_, **tmpl);
    EXPECT_TRUE(domain.ok()) << domain.status().ToString();

    core::ClassifyOptions classify_options;
    classify_options.max_candidates = kMaxCandidates;
    classify_options.threads = 1;
    auto classification = core::ClassifyParameters(
        **tmpl, *domain, wb_->store(), wb_->dict(), classify_options);
    EXPECT_TRUE(classification.ok()) << classification.status().ToString();
    out.classify = FormatClassification(**tmpl, *classification, wb_->dict());

    util::Rng run_rng(static_cast<uint64_t>(kSeed) + 1000);
    auto bindings = domain->SampleN(&run_rng, kRunN);
    core::WorkloadRunner runner(wb_->store(), wb_->dict());
    core::WorkloadOptions run_options;
    run_options.threads = 1;
    auto obs = runner.RunAll(**tmpl, bindings, run_options);
    EXPECT_TRUE(obs.ok()) << obs.status().ToString();
    out.run = FormatObservations(**tmpl, *obs, wb_->dict());

    util::Rng explain_rng(static_cast<uint64_t>(kSeed) + 1000);
    auto binding = domain->Sample(&explain_rng);
    auto bound = (*tmpl)->Bind(binding, wb_->dict());
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    auto plan = opt::Optimize(*bound, wb_->store(), wb_->dict(), {});
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    out.explain = FormatExplain(**tmpl, *bound, binding, *plan, wb_->dict());
    return out;
  }

  /// One client session: every query's classify + run + explain over one
  /// connection, each response compared byte-for-byte to the in-process
  /// expectation. Runs concurrently with other clients in the sweep.
  static void RunClientSession(uint16_t port, int client_id,
                               std::vector<std::string>* failures) {
    Client client;
    Status st = client.Connect("127.0.0.1", port);
    if (!st.ok()) {
      failures->push_back("connect: " + st.ToString());
      return;
    }
    auto check = [&](Opcode opcode, const std::string& payload,
                     const std::string& want, const char* what,
                     int64_t query) {
      auto frame = client.Call(opcode, payload);
      if (!frame.ok()) {
        failures->push_back(std::string(what) + " q" +
                            std::to_string(query) + ": " +
                            frame.status().ToString());
        return;
      }
      if (frame->opcode != static_cast<uint8_t>(Opcode::kOk)) {
        failures->push_back(std::string(what) + " q" +
                            std::to_string(query) + ": error frame " +
                            DecodeErrorPayload(frame->payload).ToString());
        return;
      }
      if (frame->payload != want) {
        failures->push_back(std::string(what) + " q" +
                            std::to_string(query) + ": response bytes "
                            "diverge from the in-process result (client " +
                            std::to_string(client_id) + ")");
      }
    };
    for (int64_t query : kQueries) {
      const Expected& want = (*expected_)[query];
      std::string q = std::to_string(query);
      check(Opcode::kClassify,
            "query=" + q + "\nmax_candidates=" +
                std::to_string(kMaxCandidates),
            want.classify, "classify", query);
      check(Opcode::kRun,
            "query=" + q + "\nn=" + std::to_string(kRunN) +
                "\nseed=" + std::to_string(kSeed),
            want.run, "run", query);
      check(Opcode::kExplain, "query=" + q + "\nseed=" + std::to_string(kSeed),
            want.explain, "explain", query);
    }
  }

  /// The full sweep cell: a fresh server at `server_threads`, hit by
  /// `num_clients` concurrent sessions.
  static void SweepCell(int server_threads, int num_clients) {
    SCOPED_TRACE("server_threads=" + std::to_string(server_threads) +
                 " clients=" + std::to_string(num_clients));
    Service service(*wb_);
    ServerConfig config;
    config.port = 0;
    config.threads = server_threads;
    Server server(&service, config);
    ASSERT_TRUE(server.Start().ok());

    std::vector<std::vector<std::string>> failures(
        static_cast<size_t>(num_clients));
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(num_clients));
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back(RunClientSession, server.port(), c,
                           &failures[static_cast<size_t>(c)]);
    }
    for (auto& t : clients) t.join();
    server.Stop();

    for (const auto& per_client : failures) {
      for (const std::string& failure : per_client) {
        ADD_FAILURE() << failure;
      }
    }
  }

  static Workbench* wb_;
  static std::map<int64_t, Expected>* expected_;
};

Workbench* ServerDifferentialTest::wb_ = nullptr;
std::map<int64_t, Expected>* ServerDifferentialTest::expected_ = nullptr;

TEST_F(ServerDifferentialTest, Threads1Clients1) { SweepCell(1, 1); }
TEST_F(ServerDifferentialTest, Threads1Clients8) { SweepCell(1, 8); }
TEST_F(ServerDifferentialTest, Threads2Clients1) { SweepCell(2, 1); }
TEST_F(ServerDifferentialTest, Threads2Clients8) { SweepCell(2, 8); }
TEST_F(ServerDifferentialTest, Threads4Clients1) { SweepCell(4, 1); }
TEST_F(ServerDifferentialTest, Threads4Clients8) { SweepCell(4, 8); }
TEST_F(ServerDifferentialTest, Threads8Clients1) { SweepCell(8, 1); }
TEST_F(ServerDifferentialTest, Threads8Clients8) { SweepCell(8, 8); }

// Repeated classify on one connection exercises the incremental
// ClassificationSession reuse path; every repetition must return the
// exact same bytes as the first (and as the one-shot in-process call).
TEST_F(ServerDifferentialTest, RepeatedClassifyOnOneConnectionIsStable) {
  Service service(*wb_);
  ServerConfig config;
  config.port = 0;
  config.threads = 2;
  Server server(&service, config);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  std::string payload =
      "query=4\nmax_candidates=" + std::to_string(kMaxCandidates);
  const std::string& want = (*expected_)[4].classify;
  for (int i = 0; i < 3; ++i) {
    auto frame = client.Call(Opcode::kClassify, payload);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kOk));
    EXPECT_EQ(frame->payload, want) << "repetition " << i;
  }

  // A growing-budget sweep reuses the same session incrementally; its
  // final answer must still match a fresh full-budget classification.
  for (int64_t budget : {int64_t{40}, int64_t{80}, kMaxCandidates}) {
    auto frame = client.Call(
        Opcode::kClassify, "query=4\nmax_candidates=" + std::to_string(budget));
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->opcode, static_cast<uint8_t>(Opcode::kOk));
  }
  auto final_frame = client.Call(Opcode::kClassify, payload);
  ASSERT_TRUE(final_frame.ok());
  EXPECT_EQ(final_frame->payload, want);
  server.Stop();
}

// Inline bindings shipped in the request body must produce the same
// observations as running those bindings in process.
TEST_F(ServerDifferentialTest, InlineBindingsMatchInProcessRun) {
  auto tmpl = PickTemplate(*wb_, 4);
  ASSERT_TRUE(tmpl.ok());
  auto domain = MakeDomain(*wb_, **tmpl);
  ASSERT_TRUE(domain.ok());
  util::Rng rng(99);
  auto bindings = domain->SampleN(&rng, 5);

  // Render the bindings the way `rdfparams sample --out=...` would.
  std::string body;
  for (const auto& binding : bindings) {
    for (size_t i = 0; i < binding.values.size(); ++i) {
      if (i > 0) body += '\t';
      body += wb_->dict().term(binding.values[i]).ToNTriples();
    }
    body += '\n';
  }

  core::WorkloadRunner runner(wb_->store(), wb_->dict());
  core::WorkloadOptions run_options;
  run_options.threads = 1;
  auto obs = runner.RunAll(**tmpl, bindings, run_options);
  ASSERT_TRUE(obs.ok()) << obs.status().ToString();
  std::string want = FormatObservations(**tmpl, *obs, wb_->dict());

  Service service(*wb_);
  ServerConfig config;
  config.port = 0;
  config.threads = 2;
  Server server(&service, config);
  ASSERT_TRUE(server.Start().ok());
  auto response = CallOnce("127.0.0.1", server.port(), Opcode::kRun,
                           "query=4\n\n" + body);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(*response, want);
  server.Stop();
}

}  // namespace
}  // namespace rdfparams::server

#include "rdf/triple_store.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rdfparams::rdf {
namespace {

class TripleStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Small fixed graph:
    //   s0 -p0-> o0   s0 -p0-> o1   s0 -p1-> o0
    //   s1 -p0-> o0   s1 -p1-> o1   s2 -p1-> o1
    store_.Add(0, 10, 20);
    store_.Add(0, 10, 21);
    store_.Add(0, 11, 20);
    store_.Add(1, 10, 20);
    store_.Add(1, 11, 21);
    store_.Add(2, 11, 21);
    store_.Finalize();
  }
  TripleStore store_;
};

TEST_F(TripleStoreTest, SizeAndDedup) {
  EXPECT_EQ(store_.size(), 6u);
  TripleStore s2;
  s2.Add(1, 2, 3);
  s2.Add(1, 2, 3);
  s2.Add(1, 2, 3);
  s2.Finalize();
  EXPECT_EQ(s2.size(), 1u);
}

TEST_F(TripleStoreTest, CountPatternAllCombinations) {
  const TermId W = kWildcardId;
  EXPECT_EQ(store_.CountPattern(W, W, W), 6u);
  EXPECT_EQ(store_.CountPattern(0, W, W), 3u);
  EXPECT_EQ(store_.CountPattern(W, 10, W), 3u);
  EXPECT_EQ(store_.CountPattern(W, W, 21), 3u);
  EXPECT_EQ(store_.CountPattern(0, 10, W), 2u);
  EXPECT_EQ(store_.CountPattern(W, 10, 20), 2u);
  EXPECT_EQ(store_.CountPattern(0, W, 20), 2u);
  EXPECT_EQ(store_.CountPattern(0, 10, 21), 1u);
  EXPECT_EQ(store_.CountPattern(9, W, W), 0u);
  EXPECT_EQ(store_.CountPattern(0, 11, 21), 0u);
}

TEST_F(TripleStoreTest, ScanPatternVisitsExactlyMatches) {
  std::set<std::tuple<TermId, TermId, TermId>> seen;
  store_.ScanPattern(kWildcardId, 11, kWildcardId, [&](const Triple& t) {
    seen.insert({t.s, t.p, t.o});
  });
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_TRUE(seen.count({0, 11, 20}));
  EXPECT_TRUE(seen.count({1, 11, 21}));
  EXPECT_TRUE(seen.count({2, 11, 21}));
}

TEST_F(TripleStoreTest, RangeIsSortedInIndexOrder) {
  auto range = store_.Range(IndexOrder::kPOS, kWildcardId, 10, kWildcardId);
  ASSERT_EQ(range.size(), 3u);
  for (size_t i = 1; i < range.size(); ++i) {
    EXPECT_LE(range[i - 1].o, range[i].o);
    if (range[i - 1].o == range[i].o) {
      EXPECT_LE(range[i - 1].s, range[i].s);
    }
  }
}

TEST_F(TripleStoreTest, DistinctCounts) {
  EXPECT_EQ(store_.NumDistinctSubjects(), 3u);
  EXPECT_EQ(store_.NumDistinctPredicates(), 2u);
  EXPECT_EQ(store_.NumDistinctObjects(), 2u);
  EXPECT_EQ(store_.DistinctSubjectsForPredicate(10), 2u);
  EXPECT_EQ(store_.DistinctObjectsForPredicate(10), 2u);
  EXPECT_EQ(store_.DistinctSubjectsForPredicate(11), 3u);
  EXPECT_EQ(store_.DistinctObjectsForPredicate(11), 2u);
  EXPECT_EQ(store_.DistinctSubjectsForPredicate(99), 0u);
}

TEST_F(TripleStoreTest, PredicatesListAscending) {
  auto preds = store_.Predicates();
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0], 10u);
  EXPECT_EQ(preds[1], 11u);
}

TEST_F(TripleStoreTest, DistinctObjectsOfSubjectsOf) {
  auto objs = store_.DistinctObjectsOf(11);
  EXPECT_EQ(objs, (std::vector<TermId>{20, 21}));
  auto subs = store_.DistinctSubjectsOf(10);
  EXPECT_EQ(subs, (std::vector<TermId>{0, 1}));
  EXPECT_TRUE(store_.DistinctObjectsOf(99).empty());
}

TEST_F(TripleStoreTest, AllSixIndexesConsistent) {
  store_.BuildAllIndexes();
  const TermId W = kWildcardId;
  for (IndexOrder order : {IndexOrder::kSPO, IndexOrder::kPOS,
                           IndexOrder::kOSP, IndexOrder::kSOP,
                           IndexOrder::kPSO, IndexOrder::kOPS}) {
    auto all = store_.Range(order, W, W, W);
    EXPECT_EQ(all.size(), 6u) << IndexOrderName(order);
  }
  // SOP prefix (s, o).
  auto range = store_.Range(IndexOrder::kSOP, 0, W, 20);
  EXPECT_EQ(range.size(), 2u);
}

TEST(TripleStoreRandomTest, CountsMatchBruteForce) {
  util::Rng rng(17);
  TripleStore store;
  std::vector<Triple> truth;
  for (int i = 0; i < 3000; ++i) {
    Triple t(static_cast<TermId>(rng.Uniform(20)),
             static_cast<TermId>(rng.Uniform(5) + 100),
             static_cast<TermId>(rng.Uniform(30) + 200));
    store.Add(t);
    truth.push_back(t);
  }
  store.Finalize();
  std::sort(truth.begin(), truth.end(), [](const Triple& a, const Triple& b) {
    return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
  });
  truth.erase(std::unique(truth.begin(), truth.end()), truth.end());

  auto brute = [&](TermId s, TermId p, TermId o) {
    uint64_t n = 0;
    for (const Triple& t : truth) {
      if ((s == kWildcardId || t.s == s) && (p == kWildcardId || t.p == p) &&
          (o == kWildcardId || t.o == o)) {
        ++n;
      }
    }
    return n;
  };
  for (int trial = 0; trial < 200; ++trial) {
    TermId s = rng.Bernoulli(0.5) ? static_cast<TermId>(rng.Uniform(20))
                                  : kWildcardId;
    TermId p = rng.Bernoulli(0.5) ? static_cast<TermId>(rng.Uniform(5) + 100)
                                  : kWildcardId;
    TermId o = rng.Bernoulli(0.5) ? static_cast<TermId>(rng.Uniform(30) + 200)
                                  : kWildcardId;
    EXPECT_EQ(store.CountPattern(s, p, o), brute(s, p, o))
        << "s=" << s << " p=" << p << " o=" << o;
  }
}

TEST(TripleStoreEdgeTest, EmptyStore) {
  TripleStore store;
  store.Finalize();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.CountPattern(kWildcardId, kWildcardId, kWildcardId), 0u);
  EXPECT_EQ(store.NumDistinctSubjects(), 0u);
  EXPECT_TRUE(store.Predicates().empty());
}

TEST(TripleStoreEdgeTest, RefinalizeAfterAdd) {
  TripleStore store;
  store.Add(1, 2, 3);
  store.Finalize();
  EXPECT_EQ(store.size(), 1u);
  store.Add(4, 5, 6);
  EXPECT_FALSE(store.finalized());
  store.Finalize();
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.CountPattern(4, kWildcardId, kWildcardId), 1u);
}

TEST(TripleStoreEdgeTest, MemoryBytesPositive) {
  TripleStore store;
  store.Add(1, 2, 3);
  store.Finalize();
  EXPECT_GT(store.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace rdfparams::rdf

#include "core/step_distribution.h"

#include <map>

#include <gtest/gtest.h>

namespace rdfparams::core {
namespace {

ParameterDomain MakeDomain(size_t n) {
  ParameterDomain d;
  std::vector<rdf::TermId> values;
  for (rdf::TermId i = 0; i < n; ++i) values.push_back(i);
  d.AddSingle("x", values);
  return d;
}

TEST(StepSamplerTest, EqualWeightsAreUniformish) {
  ParameterDomain d = MakeDomain(100);
  auto sampler = StepSampler::Create(&d, {1, 1, 1, 1});
  ASSERT_TRUE(sampler.ok());
  util::Rng rng(3);
  std::map<rdf::TermId, int> counts;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    ++counts[sampler->Sample(&rng).values[0]];
  }
  // Every value reachable, roughly uniform.
  EXPECT_EQ(counts.size(), 100u);
  for (const auto& [v, c] : counts) {
    (void)v;
    EXPECT_NEAR(c, kN / 100, kN / 100 * 0.5);
  }
}

TEST(StepSamplerTest, ZeroWeightStepNeverSampled) {
  ParameterDomain d = MakeDomain(100);
  // Kill the first quarter (values 0..24).
  auto sampler = StepSampler::Create(&d, {0, 1, 1, 1});
  ASSERT_TRUE(sampler.ok());
  util::Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(sampler->Sample(&rng).values[0], 25u);
  }
}

TEST(StepSamplerTest, SkewedWeightsShiftMass) {
  ParameterDomain d = MakeDomain(100);
  auto sampler = StepSampler::Create(&d, {9, 1});
  ASSERT_TRUE(sampler.ok());
  util::Rng rng(7);
  int low = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (sampler->Sample(&rng).values[0] < 50) ++low;
  }
  EXPECT_NEAR(low / static_cast<double>(kN), 0.9, 0.02);
}

TEST(StepSamplerTest, StepRangesPartitionDomain) {
  ParameterDomain d = MakeDomain(10);
  auto sampler = StepSampler::Create(&d, {1, 1, 1});
  ASSERT_TRUE(sampler.ok());
  uint64_t prev_hi = 0;
  for (size_t i = 0; i < sampler->num_steps(); ++i) {
    auto [lo, hi] = sampler->StepRange(i);
    EXPECT_EQ(lo, prev_hi);
    EXPECT_GT(hi, lo);
    prev_hi = hi;
  }
  EXPECT_EQ(prev_hi, 10u);
}

TEST(StepSamplerTest, MultiGroupDomains) {
  ParameterDomain d;
  d.AddSingle("a", {0, 1, 2});
  d.AddTuples({"x", "y"}, {{10, 11}, {20, 21}});
  auto sampler = StepSampler::Create(&d, {1, 1});
  ASSERT_TRUE(sampler.ok());
  util::Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    auto b = sampler->Sample(&rng);
    ASSERT_EQ(b.values.size(), 3u);
    EXPECT_LE(b.values[0], 2u);
    EXPECT_EQ(b.values[2], b.values[1] + 1);  // tuple stays intact
  }
}

TEST(StepSamplerTest, SampleNCount) {
  ParameterDomain d = MakeDomain(10);
  auto sampler = StepSampler::Create(&d, {1});
  ASSERT_TRUE(sampler.ok());
  util::Rng rng(11);
  EXPECT_EQ(sampler->SampleN(&rng, 17).size(), 17u);
}

TEST(StepSamplerTest, InvalidConfigurations) {
  ParameterDomain d = MakeDomain(4);
  EXPECT_FALSE(StepSampler::Create(nullptr, {1}).ok());
  EXPECT_FALSE(StepSampler::Create(&d, {}).ok());
  EXPECT_FALSE(StepSampler::Create(&d, {1, 1, 1, 1, 1}).ok());  // k > |P|
  EXPECT_FALSE(StepSampler::Create(&d, {0, 0}).ok());
  EXPECT_FALSE(StepSampler::Create(&d, {1, -1}).ok());
  ParameterDomain empty;
  EXPECT_FALSE(StepSampler::Create(&empty, {1}).ok());
}

}  // namespace
}  // namespace rdfparams::core

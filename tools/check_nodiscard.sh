#!/usr/bin/env bash
# Negative compile test for the [[nodiscard]] Status/Result contract.
#
# Proves the enforcement actually fires: compiles known-bad snippets that
# silently drop a Status / Result<T> with the same -Werror=unused-result the
# build uses, and FAILS if any of them compile. Also compiles a known-good
# snippet (util::IgnoreStatus + handled paths) and fails if that one does
# NOT compile. Registered as the `check_nodiscard` ctest target.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
CXX="${CXX:-c++}"
FLAGS=(-std=c++20 -fsyntax-only -Werror=unused-result -I"$ROOT/src")

TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

fail=0

expect_compile_error() {
  local name="$1" src="$2"
  printf '%s\n' "$src" > "$TMPDIR/$name.cc"
  if "$CXX" "${FLAGS[@]}" "$TMPDIR/$name.cc" 2> "$TMPDIR/$name.err"; then
    echo "FAIL: $name compiled, but must be rejected (discarded nodiscard)" >&2
    fail=1
  elif ! grep -q "unused-result\|nodiscard" "$TMPDIR/$name.err"; then
    echo "FAIL: $name was rejected, but not by the nodiscard check:" >&2
    cat "$TMPDIR/$name.err" >&2
    fail=1
  else
    echo "ok: $name rejected by -Werror=unused-result"
  fi
}

expect_compile_ok() {
  local name="$1" src="$2"
  printf '%s\n' "$src" > "$TMPDIR/$name.cc"
  if ! "$CXX" "${FLAGS[@]}" "$TMPDIR/$name.cc" 2> "$TMPDIR/$name.err"; then
    echo "FAIL: $name must compile but was rejected:" >&2
    cat "$TMPDIR/$name.err" >&2
    fail=1
  else
    echo "ok: $name compiles"
  fi
}

expect_compile_error dropped_status '
#include "util/status.h"
using rdfparams::Status;
Status Work() { return Status::Internal("boom"); }
void Caller() {
  Work();  // BAD: Status dropped on the floor
}'

expect_compile_error dropped_result '
#include "util/status.h"
using rdfparams::Result;
using rdfparams::Status;
Result<int> Work() { return Status::Internal("boom"); }
void Caller() {
  Work();  // BAD: Result dropped on the floor
}'

expect_compile_error dropped_factory '
#include "util/status.h"
void Caller() {
  rdfparams::Status::InvalidArgument("x");  // BAD: constructed and dropped
}'

expect_compile_error dropped_api_call '
#include "util/coding.h"
void Caller(rdfparams::util::Decoder* d) {
  d->ReadU32();  // BAD: Result<uint32_t> from a real API dropped
}'

expect_compile_ok audited_discard '
#include "util/status.h"
using rdfparams::Status;
Status Work() { return Status::Internal("boom"); }
void Caller() {
  rdfparams::util::IgnoreStatus(Work(), "negative-compile fixture");
  Status st = Work();
  if (!st.ok()) return;
}'

exit "$fail"

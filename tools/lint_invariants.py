#!/usr/bin/env python3
"""Project invariant lint: machine-checks the determinism contract.

The repo's headline guarantee (docs/ARCHITECTURE.md, "Determinism contract")
is that curation output is byte-identical across threads x morsels x chunk
sizes x snapshot round-trips. Most of that is enforced dynamically by the
differential tests; this lint enforces the *static* conventions that keep
those tests meaningful:

  determinism-random   No rand()/srand()/std::random_device/time()-style
                       entropy outside src/util/rng.* — all randomness flows
                       through the seeded util::Rng so every run replays.
  unordered-iteration  No range-for directly over an unordered container:
                       iteration order is implementation-defined, so any
                       value that escapes such a loop can drift between
                       builds. Iterate a sorted copy or an index instead,
                       or annotate why order provably cannot escape.
  unordered-in-output  Formatter/output translation units (the byte-identity
                       anchors) may not mention unordered containers at all.
  raw-assert           Library code uses RDFPARAMS_DCHECK, never bare
                       assert(), so debug and release builds differ in
                       exactly one documented way (util/status.h defines it).
  include-guard        Header guards must spell RDFPARAMS_<PATH>_H_ so a
                       copy-pasted guard can never silently mask a header.
  float-format         printf-style %g/%e/%f conversions are banned outside
                       the anchored "%.17g" protocol formatters
                       (src/server/protocol.cc, src/rdf/term.cc): float
                       rendering with fewer digits is lossy, and lossy
                       rendering inside a byte-identity surface hides drift.
                       Human-facing diagnostics annotate an allow.
  void-discard         A C-style (void)fn(...) cast silences [[nodiscard]]
                       without leaving an audit trail; intentional Status /
                       Result drops must go through util::IgnoreStatus
                       (greppable, carries a reason). Plain `(void)var;`
                       unused-binding suppressions stay legal.

Suppression: append `lint:allow(<rule-id>): <reason>` in a comment on the
offending line. The reason is mandatory prose for the reviewer; the lint only
checks the marker. Every suppression is greppable.

Usage: lint_invariants.py [--root DIR] [--list-rules]
Exit status: 0 clean, 1 violations, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

# Files whose whole job is deterministic text/byte output. They anchor the
# byte-identity contract, so nondeterministic containers are banned outright
# (unordered-in-output) rather than merely at iteration sites.
OUTPUT_FILES = {
    "src/server/protocol.cc",
    "src/server/wire.cc",
    "src/rdf/describe.cc",
    "src/optimizer/plan.cc",
    "src/util/table.cc",
    "src/core/workload_io.cc",
    "src/stats/descriptive.cc",
    "src/stats/histogram.cc",
}

# The only files allowed to spell the round-trip-exact protocol conversion.
ANCHORED_FLOAT_FILES = {
    "src/server/protocol.cc",
    "src/rdf/term.cc",
}

# All randomness funnels through the seeded PCG64 wrapper.
RNG_FILES = {
    "src/util/rng.h",
    "src/util/rng.cc",
}

ASSERT_EXEMPT_FILES = {
    "src/util/status.h",  # defines RDFPARAMS_DCHECK in terms of assert()
}

LIB_DIRS = ("src",)
ALL_DIRS = ("src", "tests", "bench", "tools", "examples", "fuzz")


def lex(text):
    """Split C++ source into (code_lines, literal_spans).

    code_lines: list of per-line code with comments and literal bodies
    removed (quotes kept as empty "" markers).
    literal_spans: list of (line_number_1based, literal_text) for every
    string literal, including each line of a multi-line raw string.
    """
    n = len(text)
    i = 0
    line = 1
    code = [""]
    literals = []

    def code_append(ch):
        code[-1] += ch

    def newline():
        nonlocal line
        line += 1
        code.append("")

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            newline()
            i += 1
        elif c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            line += text.count("\n", i, j)
            code.extend([""] * text.count("\n", i, j))
            i = j
        elif c == "R" and nxt == '"' and not (i > 0 and
                                              (text[i - 1].isalnum() or
                                               text[i - 1] == "_")):
            m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
            if not m:
                code_append(c)
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, i + m.end())
            j = n if j == -1 else j
            body = text[i + m.end():j]
            for k, part in enumerate(body.split("\n")):
                literals.append((line + k, part))
            line += body.count("\n")
            code_append('""')
            code.extend([""] * body.count("\n"))
            i = n if j == n else j + len(close)
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                elif text[j] == "\n":
                    break  # unterminated; be forgiving
                j += 1
            literals.append((line, text[i + 1:j]))
            code_append('""')
            i = min(j + 1, n)
        elif c == "'" and not (i > 0 and
                               (text[i - 1].isalnum() or text[i - 1] == "_")):
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                elif text[j] == "\n":
                    break
                j += 1
            code_append("''")
            i = min(j + 1, n)
        else:
            code_append(c)
            i += 1
    return code, literals


def allowed(raw_lines, lineno, rule):
    if lineno - 1 >= len(raw_lines):
        return False
    return f"lint:allow({rule})" in raw_lines[lineno - 1]


RANDOM_RE = re.compile(
    r"\b(?:rand|srand|rand_r|drand48|time|clock|gettimeofday|"
    r"localtime|gmtime)\s*\(|\brandom_device\b")
UNORDERED_ITER_RE = re.compile(r"\bfor\s*\([^;)]*:\s*[^)]*\bunordered_")
RAW_ASSERT_RE = re.compile(r"\bassert\s*\(")
FLOAT_FMT_RE = re.compile(r"%[-+ #0-9.*]*[gGeEf](?![A-Za-z0-9_%])")
VOID_DISCARD_RE = re.compile(r"\(\s*void\s*\)\s*[A-Za-z_][\w:.]*(?:->\w+)*\s*\(")


def expected_guard(rel):
    # Library headers drop the src/ prefix (RDFPARAMS_UTIL_STATUS_H_);
    # tests/ and bench/ headers keep their directory.
    if rel.startswith("src/"):
        rel = rel[len("src/"):]
    stem = re.sub(r"[/.]", "_", rel)
    return "RDFPARAMS_" + stem.upper() + "_"


def lint_file(root, rel, violations):
    path = os.path.join(root, rel)
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.split("\n")
    code, literals = lex(text)
    in_lib = rel.startswith("src/")

    def report(lineno, rule, msg):
        if not allowed(raw_lines, lineno, rule):
            violations.append((rel, lineno, rule, msg))

    # -- determinism-random: everywhere but the rng funnel itself.
    if rel not in RNG_FILES:
        for ln, code_line in enumerate(code, 1):
            m = RANDOM_RE.search(code_line)
            if m:
                report(ln, "determinism-random",
                       f"raw entropy source {m.group(0).strip()!r}; use the "
                       "seeded util::Rng (src/util/rng.h)")

    # -- unordered iteration / unordered in output files (library only).
    if in_lib:
        for ln, code_line in enumerate(code, 1):
            if UNORDERED_ITER_RE.search(code_line):
                report(ln, "unordered-iteration",
                       "range-for over an unordered container: iteration "
                       "order is implementation-defined; iterate a sorted "
                       "copy or annotate why order cannot escape")
        if rel in OUTPUT_FILES:
            for ln, code_line in enumerate(code, 1):
                if "unordered_" in code_line:
                    report(ln, "unordered-in-output",
                           "unordered container in a formatter/output "
                           "translation unit (byte-identity anchor)")

    # -- raw assert (library only; status.h defines the macro).
    if in_lib and rel not in ASSERT_EXEMPT_FILES:
        for ln, code_line in enumerate(code, 1):
            if RAW_ASSERT_RE.search(code_line):
                report(ln, "raw-assert",
                       "bare assert() in library code; use RDFPARAMS_DCHECK "
                       "(util/status.h)")

    # -- include guards (headers anywhere).
    if rel.endswith(".h"):
        want = expected_guard(rel)
        ifndef = None
        for ln, code_line in enumerate(code, 1):
            m = re.match(r"\s*#\s*ifndef\s+(\S+)", code_line)
            if m:
                ifndef = (ln, m.group(1))
                break
        if ifndef is None:
            report(1, "include-guard", f"missing include guard {want}")
        elif ifndef[1] != want:
            report(ifndef[0], "include-guard",
                   f"guard {ifndef[1]} should be {want}")
        else:
            define_ok = any(
                re.match(r"\s*#\s*define\s+" + re.escape(want) + r"\b", cl)
                for cl in code)
            if not define_ok:
                report(ifndef[0], "include-guard",
                       f"#define {want} missing after #ifndef")

    # -- float formats inside string literals (library only).
    if in_lib:
        for ln, lit in literals:
            for m in FLOAT_FMT_RE.finditer(lit):
                if rel in ANCHORED_FLOAT_FILES and m.group(0) == "%.17g":
                    continue
                report(ln, "float-format",
                       f"float conversion {m.group(0)!r} outside the "
                       "anchored %.17g protocol formatters; route through "
                       "util::FormatSig/FormatDuration or annotate")

    # -- (void) discards of call expressions (all trees).
    for ln, code_line in enumerate(code, 1):
        if VOID_DISCARD_RE.search(code_line):
            report(ln, "void-discard",
                   "(void)-cast of a call expression defeats [[nodiscard]] "
                   "without an audit trail; use util::IgnoreStatus(st, "
                   "\"reason\") or bind the value")


def collect_files(root):
    out = []
    for d in ALL_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith((".h", ".cc")):
                    out.append(os.path.relpath(os.path.join(dirpath, name),
                                               root))
    return sorted(out)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        print(__doc__)
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    files = collect_files(root)
    if not files:
        print("lint_invariants: no sources found under", root,
              file=sys.stderr)
        return 2

    violations = []
    for rel in files:
        lint_file(root, rel, violations)

    violations.sort(key=lambda v: (v[0], v[1], v[2]))
    for rel, ln, rule, msg in violations:
        print(f"{rel}:{ln}: [{rule}] {msg}")
    if violations:
        print(f"lint_invariants: {len(violations)} violation(s) in "
              f"{len(set(v[0] for v in violations))} file(s)",
              file=sys.stderr)
        return 1
    print(f"lint_invariants: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

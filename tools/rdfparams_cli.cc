// rdfparams — command-line workload generator implementing the paper's
// pipeline end to end:
//
//   rdfparams generate --workload=bsbm --products=10000 --out=data.nt
//       Generate a dataset and write it as N-Triples.
//
//   rdfparams classify --workload=bsbm --query=4
//       Partition the query's parameter domain into plan classes
//       (Section III, conditions a/b/c) and print the class table.
//
//   rdfparams sample --workload=bsbm --query=4 --mode=class --n=100 \
//             --out=bindings.tsv
//       Emit parameter bindings: uniform baseline, step-shaped
//       (TPC-DS-style related work), or stratified per plan class.
//
//   rdfparams run --workload=bsbm --query=4 --bindings=bindings.tsv
//       Execute the workload from a bindings file and report the
//       aggregate runtimes (q10 / median / q90 / average, P1-P3 checks).
//
//   rdfparams load --input=data.nt --load-threads=0
//       Load an N-Triples file through the sharded parallel loader,
//       finalize the indexes on the same pool, and report throughput.
//
//   rdfparams save --workload=bsbm --products=10000 --out=data.snap
//       Generate (or load, with --input=FILE.nt) a dataset and write it
//       as one checksummed paged snapshot file; opening it restores the
//       byte-identical store without re-parsing or re-sorting.
//
//   rdfparams open --input=data.snap
//       Verify a snapshot's checksums and print its layout and contents.
//
//   rdfparams serve --port=0 --threads=0 --max-conns=64 --queue-depth=64
//       Start the workload daemon: classify/run/explain served over the
//       length-prefixed wire protocol until a client sends shutdown.
//       The chosen port (the point of --port=0) is printed on stdout.
//
//   rdfparams client --port=N --op=classify --query=4
//       One request against a running daemon; prints the response
//       payload (byte-identical to the equivalent in-process call).
//
// Every subcommand regenerates the dataset deterministically from
// --seed/--products/--persons, so binding files remain valid across runs;
// --snapshot=FILE.snap skips the regeneration and opens a saved snapshot
// instead (same store, same ids, same output bytes).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>

#include "bsbm/generator.h"
#include "bsbm/queries.h"
#include "core/analysis.h"
#include "core/plan_classifier.h"
#include "core/step_distribution.h"
#include "core/workload.h"
#include "core/workload_io.h"
#include "rdf/describe.h"
#include "rdf/ntriples.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "server/workbench.h"
#include "snb/generator.h"
#include "snb/queries.h"
#include "storage/snapshot.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace rdfparams;

namespace {

struct Options {
  std::string workload = "bsbm";
  int64_t query = 4;
  int64_t products = 6000;
  int64_t persons = 8000;
  int64_t seed = 42;
  int64_t n = 100;
  int64_t max_candidates = 2000;
  int64_t threads = 1;
  int64_t exec_threads = 1;
  int64_t morsel_size = 1024;
  int64_t chunk_rows = 1024;
  int64_t load_threads = 0;
  bool parallel_group_by = true;
  bool parallel_sort = true;
  bool merge_join = true;
  bool all_indexes = false;
  bool stats = false;
  double bucket_width = 1.0;
  std::string strategy = "batched";  // batched | per-candidate
  std::string mode = "uniform";  // uniform | step | class | class:K
  std::string out;
  std::string bindings;
  std::string input;
  std::string snapshot;
  int64_t page_size = storage::kDefaultPageSize;
  int64_t format = storage::kFormatVersion;
  std::string mmap = "auto";  // off | on | auto
  // serve / client
  std::string host = "127.0.0.1";
  int64_t port = 0;
  int64_t max_conns = 64;
  int64_t queue_depth = 64;
  std::string op = "ping";  // ping | classify | run | explain | shutdown
};

// The workbench (dataset + templates + domains) moved into src/server/ so
// the daemon and the CLI build the exact same world; these aliases keep
// the subcommand bodies reading as before.
using Context = server::Workbench;
using server::MakeDomain;
using server::PickTemplate;

Result<storage::MmapMode> ParseMmapMode(const std::string& name) {
  if (name == "off") return storage::MmapMode::kOff;
  if (name == "on") return storage::MmapMode::kOn;
  if (name == "auto") return storage::MmapMode::kAuto;
  return Status::InvalidArgument("--mmap must be off, on, or auto (got '" +
                                 name + "')");
}

Result<Context> MakeContext(const Options& opt) {
  if (!opt.snapshot.empty()) {
    // Fast path: restore the saved world instead of regenerating it. The
    // restored workbench is byte-identical to the generated one, so every
    // downstream subcommand produces the same output either way — in
    // copied and mmap'd open modes alike.
    RDFPARAMS_ASSIGN_OR_RETURN(storage::MmapMode mode,
                               ParseMmapMode(opt.mmap));
    storage::OpenOptions options;
    options.mmap = mode;
    return server::OpenWorkbenchSnapshot(opt.snapshot, options);
  }
  server::WorkbenchConfig config;
  config.workload = opt.workload;
  config.products = static_cast<uint64_t>(opt.products);
  config.persons = static_cast<uint64_t>(opt.persons);
  config.seed = static_cast<uint64_t>(opt.seed);
  return server::BuildWorkbench(config);
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

int CmdGenerate(const Options& opt) {
  auto ctx = MakeContext(opt);
  if (!ctx.ok()) return Fail(ctx.status());
  std::printf("generated %s dataset: %s triples, %zu terms\n",
              opt.workload.c_str(),
              util::FormatCount(ctx->store().size()).c_str(),
              ctx->dict().size());
  if (opt.out.empty()) {
    std::printf("(no --out given; dataset not written)\n");
    return 0;
  }
  std::ofstream os(opt.out, std::ios::trunc);
  if (!os) return Fail(Status::IOError("cannot open " + opt.out));
  Status st = rdf::WriteNTriples(ctx->dict(), ctx->store(), os);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s\n", opt.out.c_str());
  return 0;
}

int CmdLoad(const Options& opt) {
  if (opt.input.empty()) {
    return Fail(Status::InvalidArgument("load requires --input=FILE.nt"));
  }
  size_t threads =
      util::ThreadPool::ResolveThreads(static_cast<int>(opt.load_threads));
  util::ThreadPool pool(threads - 1);

  rdf::Dictionary dict;
  rdf::TripleStore store;
  rdf::LoadOptions load_options;
  load_options.pool = &pool;

  util::WallTimer parse_timer;
  auto data = util::ReadFileToString(opt.input);
  if (!data.ok()) return Fail(data.status());
  double mb = static_cast<double>(data->size()) / (1024.0 * 1024.0);
  Status st = rdf::LoadNTriples(*data, &dict, &store, load_options);
  if (!st.ok()) {
    return Fail(Status::ParseError(opt.input + ": " + st.message()));
  }
  std::string().swap(*data);  // the loader is done with the raw bytes
  double parse_seconds = parse_timer.ElapsedSeconds();

  util::WallTimer finalize_timer;
  if (opt.all_indexes) store.BuildAllIndexes();
  store.Finalize(&pool);
  double finalize_seconds = finalize_timer.ElapsedSeconds();

  std::printf("loaded %s: %s triples, %zu terms at load-threads=%zu\n",
              opt.input.c_str(), util::FormatCount(store.size()).c_str(),
              dict.size(), threads);
  std::printf("  read+parse+merge: %s (%.1f MB/s)\n",
              util::FormatDuration(parse_seconds).c_str(),
              parse_seconds > 0 ? mb / parse_seconds : 0.0);
  std::printf("  finalize (%s indexes): %s\n",
              opt.all_indexes ? "6" : "3",
              util::FormatDuration(finalize_seconds).c_str());
  return 0;
}

int CmdSave(const Options& opt) {
  if (opt.out.empty()) {
    return Fail(Status::InvalidArgument("save requires --out=FILE.snap"));
  }
  storage::SaveOptions options;
  options.page_size = static_cast<uint32_t>(opt.page_size);
  options.format_version = static_cast<uint32_t>(opt.format);

  if (!opt.input.empty()) {
    // Raw N-Triples load -> bare snapshot (store + dictionary, no workload
    // metadata). `classify`/`serve` need a workload snapshot; this one is
    // for load-once-open-often pipelines over arbitrary data.
    size_t threads =
        util::ThreadPool::ResolveThreads(static_cast<int>(opt.load_threads));
    util::ThreadPool pool(threads - 1);
    rdf::Dictionary dict;
    rdf::TripleStore store;
    rdf::LoadOptions load_options;
    load_options.pool = &pool;
    auto data = util::ReadFileToString(opt.input);
    if (!data.ok()) return Fail(data.status());
    Status st = rdf::LoadNTriples(*data, &dict, &store, load_options);
    if (!st.ok()) {
      return Fail(Status::ParseError(opt.input + ": " + st.message()));
    }
    std::string().swap(*data);
    if (opt.all_indexes) store.BuildAllIndexes();
    store.Finalize(&pool);
    st = storage::Snapshot::Save(dict, store, {}, opt.out, options);
    if (!st.ok()) return Fail(st);
    std::printf("saved %s: %s triples, %zu terms (no workload metadata)\n",
                opt.out.c_str(), util::FormatCount(store.size()).c_str(),
                dict.size());
    return 0;
  }

  auto ctx = MakeContext(opt);  // --snapshot here re-saves an opened one
  if (!ctx.ok()) return Fail(ctx.status());
  Status st = server::SaveWorkbenchSnapshot(*ctx, opt.out, options);
  if (!st.ok()) return Fail(st);
  std::printf("saved %s: %s triples, %zu terms, %zu templates\n",
              opt.out.c_str(), util::FormatCount(ctx->store().size()).c_str(),
              ctx->dict().size(), ctx->templates.size());
  return 0;
}

int CmdOpen(const Options& opt) {
  std::string path = !opt.input.empty() ? opt.input : opt.snapshot;
  if (path.empty()) {
    return Fail(Status::InvalidArgument("open requires --input=FILE.snap"));
  }
  auto info = storage::Snapshot::Inspect(path);
  if (!info.ok()) return Fail(info.status());
  std::printf("%s: format v%u, %llu pages of %u bytes (%s), checksums OK\n",
              path.c_str(), info->header.version,
              static_cast<unsigned long long>(info->header.page_count),
              info->header.page_size,
              util::FormatCount(info->file_size).c_str());
  util::TablePrinter table({"section", "pages", "bytes", "items"});
  for (const storage::SectionInfo& s : info->header.sections) {
    std::string name;
    if (s.kind == storage::kSectionDictionary) {
      name = "dictionary";
    } else if (s.kind == storage::kSectionDictArena) {
      name = "dict arena";
    } else if (s.kind == storage::kSectionDictRecords) {
      name = "dict records";
    } else if (s.kind == storage::kSectionDictHash) {
      name = "dict hash";
    } else if (s.kind == storage::kSectionAppMeta) {
      name = "app meta";
    } else {
      name = std::string("index ") +
             rdf::IndexOrderName(static_cast<rdf::IndexOrder>(
                 s.kind - storage::kSectionIndexBase));
    }
    table.AddRow({name, std::to_string(s.page_count),
                  std::to_string(s.byte_length), std::to_string(s.item_count)});
  }
  std::printf("%s", table.ToText().c_str());

  auto mode = ParseMmapMode(opt.mmap);
  if (!mode.ok()) return Fail(mode.status());
  storage::OpenOptions open_options;
  open_options.mmap = *mode;
  storage::OpenStats stats;
  open_options.stats = &stats;
  auto snap = storage::Snapshot::Open(path, open_options);
  if (!snap.ok()) return Fail(snap.status());
  std::printf("open path: %s; phases: checksum %s, dictionary %s, "
              "index runs %s, meta %s\n",
              stats.mmap_used ? "mmap (zero-copy)" : "copied",
              util::FormatDuration(stats.checksum_seconds).c_str(),
              util::FormatDuration(stats.dict_seconds).c_str(),
              util::FormatDuration(stats.runs_seconds).c_str(),
              util::FormatDuration(stats.meta_seconds).c_str());
  std::printf("restored: %s triples, %zu terms, %s indexes, %s\n",
              util::FormatCount(snap->store.size()).c_str(),
              snap->dict.size(),
              snap->store.all_indexes_built() ? "6" : "3",
              snap->has_app_meta ? "workload metadata present"
                                 : "no workload metadata");
  return 0;
}

int CmdDescribe(const Options& opt) {
  auto ctx = MakeContext(opt);
  if (!ctx.ok()) return Fail(ctx.status());
  rdf::DescribeOptions options;
  options.max_predicates = 30;
  std::printf("%s", rdf::DescribeStore(ctx->store(), ctx->dict(),
                                       options).c_str());
  return 0;
}

Result<core::ClassifyStrategy> ParseStrategy(const std::string& name) {
  if (name == "batched") return core::ClassifyStrategy::kBatched;
  if (name == "per-candidate" || name == "per_candidate") {
    return core::ClassifyStrategy::kPerCandidate;
  }
  return Status::InvalidArgument(
      "unknown --strategy '" + name + "' (use batched or per-candidate)");
}

int CmdClassify(const Options& opt) {
  auto ctx = MakeContext(opt);
  if (!ctx.ok()) return Fail(ctx.status());
  auto tmpl = PickTemplate(*ctx, opt.query);
  if (!tmpl.ok()) return Fail(tmpl.status());
  auto domain = MakeDomain(*ctx, **tmpl);
  if (!domain.ok()) return Fail(domain.status());
  auto strategy = ParseStrategy(opt.strategy);
  if (!strategy.ok()) return Fail(strategy.status());

  core::ClassifyOptions options;
  options.cost_bucket_log2_width = opt.bucket_width;
  options.max_candidates = static_cast<uint64_t>(opt.max_candidates);
  options.threads = static_cast<int>(opt.threads);
  options.strategy = *strategy;
  core::ClassifyStats stats;
  options.stats = &stats;
  ::rdfparams::opt::CardinalityCache cache;
  options.optimizer.cardinality_cache = &cache;
  util::WallTimer timer;
  auto classes = core::ClassifyParameters(**tmpl, *domain, ctx->store(),
                                          ctx->dict(), options);
  if (!classes.ok()) return Fail(classes.status());
  double elapsed = timer.ElapsedSeconds();

  std::printf("%s: %llu candidates -> %zu classes\n",
              (*tmpl)->name().c_str(),
              static_cast<unsigned long long>(classes->num_candidates),
              classes->classes.size());
  std::printf(
      "(%.2fs at threads=%zu, strategy=%s; cardinality cache: %llu hits / "
      "%llu misses, %.1f%% hit rate)\n\n",
      elapsed,
      util::ThreadPool::ResolveThreads(static_cast<int>(opt.threads)),
      opt.strategy.c_str(),
      static_cast<unsigned long long>(cache.hits()),
      static_cast<unsigned long long>(cache.misses()),
      cache.HitRate() * 100);
  if (opt.stats) {
    util::TablePrinter stat_table({"stat", "value"});
    auto row = [&](const char* name, uint64_t value) {
      stat_table.AddRow({name, std::to_string(value)});
    };
    row("candidates", stats.num_candidates);
    row("distinct signatures", stats.distinct_signatures);
    row("dp runs", stats.dp_runs);
    row("dp runs saved", stats.dp_runs_saved);
    row("batch-swept leaf counts", stats.batched_counts);
    row("unbatched patterns", stats.unbatched_patterns);
    stat_table.AddRow(
        {"cache hit rate",
         util::StringPrintf("%.1f%% (%llu / %llu)", stats.CacheHitRate() * 100,
                            static_cast<unsigned long long>(stats.cache_hits),
                            static_cast<unsigned long long>(
                                stats.cache_hits + stats.cache_misses))});
    std::printf("%s\n", stat_table.ToText().c_str());
  }
  util::TablePrinter table(
      {"class", "size", "share", "cost bucket", "est C_out range", "plan"});
  for (size_t i = 0; i < classes->classes.size(); ++i) {
    const core::PlanClass& cls = classes->classes[i];
    std::string bucket =
        cls.cost_bucket == std::numeric_limits<int64_t>::min()
            ? "empty-join"
            : std::to_string(cls.cost_bucket);
    table.AddRow({"S" + std::to_string(i),
                  std::to_string(cls.members.size()),
                  util::StringPrintf("%.1f%%", cls.fraction * 100),
                  bucket,
                  util::StringPrintf("[%.3g, %.3g]", cls.min_cout,
                                     cls.max_cout),
                  cls.fingerprint});
  }
  std::printf("%s", table.ToText().c_str());
  return 0;
}

int CmdSample(const Options& opt) {
  auto ctx = MakeContext(opt);
  if (!ctx.ok()) return Fail(ctx.status());
  auto tmpl = PickTemplate(*ctx, opt.query);
  if (!tmpl.ok()) return Fail(tmpl.status());
  auto domain = MakeDomain(*ctx, **tmpl);
  if (!domain.ok()) return Fail(domain.status());

  util::Rng rng(static_cast<uint64_t>(opt.seed) + 1000);
  std::vector<sparql::ParameterBinding> bindings;
  size_t n = static_cast<size_t>(opt.n);

  if (opt.mode == "uniform") {
    bindings = domain->SampleN(&rng, n);
  } else if (opt.mode == "step") {
    // Related-work baseline: down-weight the front of the ordered domain
    // (in BSBM the generic types come first) with a 1:2:4:8 step shape.
    auto sampler = core::StepSampler::Create(&domain.value(), {1, 2, 4, 8});
    if (!sampler.ok()) return Fail(sampler.status());
    bindings = sampler->SampleN(&rng, n);
  } else if (util::StartsWith(opt.mode, "class")) {
    size_t which = 0;
    if (util::StartsWith(opt.mode, "class:")) {
      which = static_cast<size_t>(std::strtoull(
          opt.mode.c_str() + 6, nullptr, 10));
    }
    core::ClassifyOptions options;
    options.cost_bucket_log2_width = opt.bucket_width;
    options.max_candidates = static_cast<uint64_t>(opt.max_candidates);
    options.threads = static_cast<int>(opt.threads);
    auto classes = core::ClassifyParameters(**tmpl, *domain, ctx->store(),
                                            ctx->dict(), options);
    if (!classes.ok()) return Fail(classes.status());
    if (which >= classes->classes.size()) {
      return Fail(Status::InvalidArgument(
          "class index out of range (have " +
          std::to_string(classes->classes.size()) + " classes)"));
    }
    bindings = core::SampleFromClass(classes->classes[which], n, &rng);
    std::printf("sampling from class S%zu (plan %s, share %.1f%%)\n", which,
                classes->classes[which].fingerprint.c_str(),
                classes->classes[which].fraction * 100);
  } else {
    return Fail(Status::InvalidArgument(
        "unknown --mode (use uniform, step, class, or class:K)"));
  }

  if (opt.out.empty()) {
    Status st = core::WriteBindings(**tmpl, bindings, ctx->dict(),
                                    std::cout);
    return st.ok() ? 0 : Fail(st);
  }
  Status st =
      core::WriteBindingsFile(**tmpl, bindings, ctx->dict(), opt.out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %zu bindings to %s\n", bindings.size(),
              opt.out.c_str());
  return 0;
}

int CmdRun(const Options& opt) {
  auto ctx = MakeContext(opt);
  if (!ctx.ok()) return Fail(ctx.status());
  auto tmpl = PickTemplate(*ctx, opt.query);
  if (!tmpl.ok()) return Fail(tmpl.status());

  std::vector<sparql::ParameterBinding> bindings;
  if (!opt.bindings.empty()) {
    auto read =
        core::ReadBindingsFile(**tmpl, ctx->mutable_dict(), opt.bindings);
    if (!read.ok()) return Fail(read.status());
    bindings = std::move(read).value();
  } else {
    auto domain = MakeDomain(*ctx, **tmpl);
    if (!domain.ok()) return Fail(domain.status());
    util::Rng rng(static_cast<uint64_t>(opt.seed) + 1000);
    bindings = domain->SampleN(&rng, static_cast<size_t>(opt.n));
    std::printf("(no --bindings file; using %zu uniform bindings)\n",
                bindings.size());
  }

  core::WorkloadRunner runner(ctx->store(), ctx->mutable_dict());
  core::WorkloadOptions run_options;
  run_options.threads = static_cast<int>(opt.threads);
  run_options.exec.threads = static_cast<int>(opt.exec_threads);
  run_options.exec.morsel_size = static_cast<uint64_t>(opt.morsel_size);
  run_options.exec.parallel_group_by = opt.parallel_group_by;
  run_options.exec.parallel_sort = opt.parallel_sort;
  run_options.exec.chunk_rows = static_cast<uint64_t>(opt.chunk_rows);
  run_options.exec.enable_merge_join = opt.merge_join;
  auto obs = runner.RunAll(**tmpl, bindings, run_options);
  if (!obs.ok()) return Fail(obs.status());

  core::ClassQuality quality = core::AnalyzeClass(*obs);
  const stats::Summary& s = quality.runtime_summary;
  std::printf("\n%s over %zu bindings:\n", (*tmpl)->name().c_str(),
              bindings.size());
  util::TablePrinter table({"q10", "Median", "q90", "Average"});
  table.AddRow({util::FormatDuration(s.q10), util::FormatDuration(s.median),
                util::FormatDuration(s.q90), util::FormatDuration(s.mean)});
  std::printf("%s", table.ToText().c_str());
  std::printf("\nP1 runtime cv: %.2f   P3 distinct plans: %zu%s\n",
              quality.runtime_cv, quality.distinct_plans,
              quality.distinct_plans == 1 ? " (stable)" : " (plan-unstable!)");
  return 0;
}

int CmdServe(const Options& opt) {
  auto ctx = MakeContext(opt);
  if (!ctx.ok()) return Fail(ctx.status());
  std::printf("serving %s dataset: %s triples, %zu terms, %zu templates\n",
              ctx->bsbm_ds ? "bsbm" : "snb",
              util::FormatCount(ctx->store().size()).c_str(),
              ctx->dict().size(), ctx->templates.size());

  server::Service service(*ctx);
  server::ServerConfig config;
  config.host = opt.host;
  config.port = static_cast<uint16_t>(opt.port);
  config.threads = static_cast<int>(opt.threads);
  config.max_conns = static_cast<int>(opt.max_conns);
  config.queue_depth = static_cast<int>(opt.queue_depth);
  server::Server srv(&service, config);
  Status st = srv.Start();
  if (!st.ok()) return Fail(st);

  // Scripts (and the CI smoke test) wait for this exact line to learn the
  // ephemeral port, so flush it immediately.
  std::printf("listening on %s:%u\n", opt.host.c_str(), srv.port());
  std::fflush(stdout);

  srv.AwaitShutdown();  // until a client sends kShutdown (or Stop below)
  srv.Stop();
  std::printf("served %llu requests over %llu connections (%llu rejected)\n",
              static_cast<unsigned long long>(srv.served_requests()),
              static_cast<unsigned long long>(srv.accepted_connections()),
              static_cast<unsigned long long>(srv.rejected_connections()));
  return 0;
}

int CmdClient(const Options& opt) {
  server::Opcode opcode;
  server::Request request;
  if (opt.op == "ping") {
    opcode = server::Opcode::kPing;
  } else if (opt.op == "shutdown") {
    opcode = server::Opcode::kShutdown;
  } else if (opt.op == "classify" || opt.op == "run" || opt.op == "explain") {
    opcode = opt.op == "classify" ? server::Opcode::kClassify
             : opt.op == "run"    ? server::Opcode::kRun
                                  : server::Opcode::kExplain;
    request.fields["query"] = std::to_string(opt.query);
    if (opt.op == "classify") {
      request.fields["max_candidates"] = std::to_string(opt.max_candidates);
      request.fields["bucket_width"] = util::StringPrintf("%.17g",
                                                          opt.bucket_width);
      request.fields["strategy"] = opt.strategy;
    } else {
      request.fields["seed"] = std::to_string(opt.seed);
      if (opt.op == "run") request.fields["n"] = std::to_string(opt.n);
      if (!opt.bindings.empty()) {
        auto body = util::ReadFileToString(opt.bindings);
        if (!body.ok()) return Fail(body.status());
        request.body = std::move(body).value();
      }
    }
  } else {
    return Fail(Status::InvalidArgument(
        "unknown --op '" + opt.op +
        "' (use ping, classify, run, explain, or shutdown)"));
  }

  std::string payload = opcode == server::Opcode::kPing
                            ? std::string("ping")
                            : server::EncodeRequest(request);
  if (opcode == server::Opcode::kShutdown) payload.clear();
  auto response = server::CallOnce(
      opt.host, static_cast<uint16_t>(opt.port), opcode, payload);
  if (!response.ok()) return Fail(response.status());
  std::fwrite(response->data(), 1, response->size(), stdout);
  if (!response->empty() && response->back() != '\n') std::printf("\n");
  return 0;
}

int CmdHelp(const char* prog) {
  std::printf(
      "usage: %s <generate|load|save|open|describe|classify|sample|run|"
      "serve|client> [flags]\n\n"
      "common flags:\n"
      "  --workload=bsbm|snb     which generator/templates (default bsbm)\n"
      "  --snapshot=FILE.snap    open a saved snapshot instead of\n"
      "                          regenerating (classify/sample/run/serve/\n"
      "                          describe; byte-identical results)\n"
      "  --mmap=auto|on|off      snapshot open mode: memory-map and borrow\n"
      "                          pages/dictionary bytes (auto falls back to\n"
      "                          copied reads; identical output either way)\n"
      "  --query=N               template number within the workload\n"
      "  --products=N --persons=N --seed=N    dataset shape (deterministic)\n"
      "  --threads=N             curation worker threads (0 = all cores;\n"
      "                          results are identical for every N)\n"
      "  --exec-threads=N        intra-query worker threads for `run`\n"
      "                          (morsel scans, partitioned hash joins,\n"
      "                          group-by reduction, ORDER BY merge sort;\n"
      "                          0 = all cores; results identical for all N)\n"
      "  --morsel-size=N         probe rows per intra-query morsel\n"
      "  --chunk-rows=N          vectorization chunk width for the columnar\n"
      "                          operators (0 = row-at-a-time reference\n"
      "                          kernels; results identical for every N)\n"
      "  --merge-join=B          merge join over sorted index runs when the\n"
      "                          optimizer hints it (default true; purely a\n"
      "                          perf switch)\n"
      "  --parallel-group-by=B   group-by slice-merge reduction on the pool\n"
      "                          (default true; purely a perf switch)\n"
      "  --parallel-sort=B       ORDER BY parallel merge sort on the pool\n"
      "                          (default true; purely a perf switch)\n"
      "  --load-threads=N        sharded N-Triples load + parallel index\n"
      "                          finalize for `load` (0 = all cores;\n"
      "                          identical store/dictionary for every N)\n"
      "subcommand flags:\n"
      "  generate: --out=FILE.nt\n"
      "  classify: --bucket_width=W --max-candidates=N --stats\n"
      "            --strategy=batched|per-candidate (identical results;\n"
      "            batched dedups the optimizer DP by cardinality signature)\n"
      "  sample:   --mode=uniform|step|class|class:K --n=N --out=FILE.tsv\n"
      "  run:      --bindings=FILE.tsv | --n=N (uniform fallback)\n"
      "  load:     --input=FILE.nt --all-indexes=B\n"
      "  save:     --out=FILE.snap --page-size=N --format=1|2, plus either\n"
      "            the dataset flags (workload snapshot) or --input=FILE.nt\n"
      "            (bare store, no workload metadata)\n"
      "  open:     --input=FILE.snap --mmap=auto|on|off (verify checksums,\n"
      "            print layout, open-phase timings)\n"
      "  serve:    --host=H --port=N (0 = ephemeral, printed on stdout)\n"
      "            --threads=N --max-conns=N --queue-depth=N\n"
      "  client:   --host=H --port=N --op=ping|classify|run|explain|shutdown\n"
      "            plus the matching request flags (--query, --n, --seed,\n"
      "            --max-candidates, --bucket_width, --strategy,\n"
      "            --bindings=FILE.tsv for inline run/explain bindings)\n",
      prog);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return CmdHelp(argv[0]);
  std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") return CmdHelp(argv[0]);

  Options opt;
  util::FlagParser flags;
  flags.AddString("workload", &opt.workload, "bsbm or snb");
  flags.AddInt64("query", &opt.query, "template number");
  flags.AddInt64("products", &opt.products, "BSBM products");
  flags.AddInt64("persons", &opt.persons, "SNB persons");
  flags.AddInt64("seed", &opt.seed, "generator seed");
  flags.AddInt64("n", &opt.n, "number of bindings");
  flags.AddInt64("max_candidates", &opt.max_candidates,
                 "classification candidate budget");
  flags.AddInt64("threads", &opt.threads,
                 "worker threads for classify/run (0 = all cores)");
  flags.AddInt64("exec_threads", &opt.exec_threads,
                 "intra-query worker threads (0 = all cores)");
  flags.AddInt64("morsel_size", &opt.morsel_size,
                 "probe rows per intra-query morsel");
  flags.AddInt64("chunk_rows", &opt.chunk_rows,
                 "vectorization chunk width (0 = row-at-a-time kernels)");
  flags.AddBool("merge_join", &opt.merge_join,
                "merge join over sorted index runs when hinted");
  flags.AddInt64("load_threads", &opt.load_threads,
                 "worker threads for the sharded loader (0 = all cores)");
  flags.AddBool("all_indexes", &opt.all_indexes,
                "build all six permutation indexes in `load`");
  flags.AddBool("stats", &opt.stats,
                "print classification statistics (signature dedup, DP runs "
                "saved, cache hit rate)");
  flags.AddString("strategy", &opt.strategy,
                  "classification stage-1 strategy: batched | per-candidate");
  flags.AddBool("parallel_group_by", &opt.parallel_group_by,
                "run group-by through the parallel slice-merge reduction");
  flags.AddBool("parallel_sort", &opt.parallel_sort,
                "run ORDER BY through the parallel merge sort");
  flags.AddDouble("bucket_width", &opt.bucket_width,
                  "log2 C_out bucket width (condition b)");
  flags.AddString("mode", &opt.mode, "uniform | step | class | class:K");
  flags.AddString("out", &opt.out, "output file");
  flags.AddString("bindings", &opt.bindings, "bindings file to run");
  flags.AddString("input", &opt.input,
                  "input file: N-Triples for load/save, snapshot for open");
  flags.AddString("snapshot", &opt.snapshot,
                  "open this snapshot instead of regenerating the dataset");
  flags.AddInt64("page_size", &opt.page_size,
                 "snapshot page size in bytes for `save` (power of two, "
                 "512..1M)");
  flags.AddInt64("format", &opt.format,
                 "snapshot format version for `save` (1 = legacy byte-stream "
                 "dictionary, 2 = raw arena/records/hash)");
  flags.AddString("mmap", &opt.mmap,
                  "snapshot open mode: auto (mmap when available), on "
                  "(require mmap), off (always copy)");
  flags.AddString("host", &opt.host, "bind/connect address for serve/client");
  flags.AddInt64("port", &opt.port,
                 "TCP port for serve/client (0 = ephemeral for serve)");
  flags.AddInt64("max_conns", &opt.max_conns,
                 "serve: max admitted (queued + serving) connections");
  flags.AddInt64("queue_depth", &opt.queue_depth,
                 "serve: max connections waiting for a worker");
  flags.AddString("op", &opt.op,
                  "client request: ping | classify | run | explain | "
                  "shutdown");
  Status st = flags.Parse(argc - 1, argv + 1);
  if (!st.ok()) return Fail(st);
  if (flags.help_requested()) return CmdHelp(argv[0]);

  if (cmd == "generate") return CmdGenerate(opt);
  if (cmd == "load") return CmdLoad(opt);
  if (cmd == "save") return CmdSave(opt);
  if (cmd == "open") return CmdOpen(opt);
  if (cmd == "describe") return CmdDescribe(opt);
  if (cmd == "classify") return CmdClassify(opt);
  if (cmd == "sample") return CmdSample(opt);
  if (cmd == "run") return CmdRun(opt);
  if (cmd == "serve") return CmdServe(opt);
  if (cmd == "client") return CmdClient(opt);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  CmdHelp(argv[0]);
  return 1;
}

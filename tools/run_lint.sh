#!/usr/bin/env bash
# Runs the project invariant lint (tools/lint_invariants.py) against the repo.
# Registered as the `invariant_lint` ctest target and run in CI, so a local
# `ctest` reproduces exactly what CI enforces. Exit 0 clean, 1 violations.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

PYTHON="${PYTHON:-python3}"
if ! command -v "$PYTHON" >/dev/null 2>&1; then
  echo "run_lint.sh: python3 not found; cannot run the invariant lint" >&2
  exit 1
fi

exec "$PYTHON" "$ROOT/tools/lint_invariants.py" --root "$ROOT" "$@"

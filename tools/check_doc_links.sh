#!/usr/bin/env bash
# Verifies that every relative markdown link target in README.md and
# docs/*.md exists, so the docs cannot silently rot as files move.
# Registered as the `docs_link_check` ctest test and run by CI.
set -u
cd "$(dirname "$0")/.."

fail=0
for f in README.md docs/*.md; do
  [ -e "$f" ] || continue
  dir=$(dirname "$f")
  # Extract (target) parts of [text](target) links, one per line.
  while IFS= read -r link; do
    # Strip an optional markdown title and <> wrapping: (path "Title").
    link=$(printf '%s' "$link" | sed -E 's/[[:space:]]+"[^"]*"$//')
    link="${link#<}"; link="${link%>}"
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target="${link%%#*}"           # drop an in-page anchor
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN LINK in $f: ($link)"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -eq 0 ]; then
  echo "doc links OK"
fi
exit "$fail"

// Microbenchmarks for the optimizer and executor: DP join ordering cost,
// hash-join throughput, full template bind+optimize+execute round trips.
#include <benchmark/benchmark.h>

#include "bsbm/generator.h"
#include "bsbm/queries.h"
#include "core/workload.h"
#include "engine/executor.h"
#include "optimizer/optimizer.h"
#include "sparql/parser.h"
#include "util/rng.h"

namespace {

using namespace rdfparams;

struct Fixture {
  bsbm::Dataset ds;
  Fixture() {
    bsbm::GeneratorConfig config;
    config.num_products = 2000;  // keeps the Q4-at-root case ~1s per run
    config.offers_per_product = 3.0;
    config.seed = 9;
    ds = bsbm::Generate(config);
  }
  static Fixture& Get() {
    static Fixture instance;
    return instance;
  }
};

void BM_OptimizeQ4(benchmark::State& state) {
  auto& f = Fixture::Get();
  auto q4 = bsbm::MakeQ4(f.ds);
  sparql::ParameterBinding b{{f.ds.types[0].id}};
  auto q = q4.Bind(b, f.ds.dict);
  for (auto _ : state) {
    auto plan = opt::Optimize(*q, f.ds.store, f.ds.dict);
    benchmark::DoNotOptimize(plan.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_OptimizeQ4);

void BM_OptimizeChainDp(benchmark::State& state) {
  // DP over an n-pattern chain: measures join-order enumeration cost.
  auto& f = Fixture::Get();
  int n = static_cast<int>(state.range(0));
  std::string text = "SELECT * WHERE { ";
  const char* preds[] = {"http://rdfparams.org/bsbm/vocabulary#productFeature",
                         "http://rdfparams.org/bsbm/vocabulary#producer",
                         "http://rdfparams.org/bsbm/vocabulary#product",
                         "http://rdfparams.org/bsbm/vocabulary#vendor"};
  for (int k = 0; k < n; ++k) {
    text += "?v" + std::to_string(k) + " <" + preds[k % 4] + "> ?v" +
            std::to_string(k + 1) + " . ";
  }
  text += "}";
  auto q = sparql::ParseQuery(text);
  for (auto _ : state) {
    auto plan = opt::Optimize(*q, f.ds.store, f.ds.dict);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_OptimizeChainDp)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_ExecuteQ4Leaf(benchmark::State& state) {
  auto& f = Fixture::Get();
  auto q4 = bsbm::MakeQ4(f.ds);
  sparql::ParameterBinding b{{f.ds.LeafTypeIds()[0]}};
  auto q = q4.Bind(b, f.ds.dict);
  auto plan = opt::Optimize(*q, f.ds.store, f.ds.dict);
  engine::Executor exec(f.ds.store, &f.ds.dict);
  for (auto _ : state) {
    engine::ExecutionStats stats;
    auto result = exec.Execute(*q, *plan->root, &stats);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_ExecuteQ4Leaf);

void BM_ExecuteQ4Root(benchmark::State& state) {
  auto& f = Fixture::Get();
  auto q4 = bsbm::MakeQ4(f.ds);
  sparql::ParameterBinding b{{f.ds.types[0].id}};
  auto q = q4.Bind(b, f.ds.dict);
  auto plan = opt::Optimize(*q, f.ds.store, f.ds.dict);
  engine::Executor exec(f.ds.store, &f.ds.dict);
  for (auto _ : state) {
    engine::ExecutionStats stats;
    auto result = exec.Execute(*q, *plan->root, &stats);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_ExecuteQ4Root);

void BM_ExecuteQ4RootThreads(benchmark::State& state) {
  // Intra-query parallelism axis: same query/plan as BM_ExecuteQ4Root,
  // executed with N exec-threads (morsel scans + partitioned hash joins).
  auto& f = Fixture::Get();
  auto q4 = bsbm::MakeQ4(f.ds);
  sparql::ParameterBinding b{{f.ds.types[0].id}};
  auto q = q4.Bind(b, f.ds.dict);
  auto plan = opt::Optimize(*q, f.ds.store, f.ds.dict);
  engine::Executor exec(f.ds.store, &f.ds.dict);
  engine::ExecOptions exec_options;
  exec_options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    engine::ExecutionStats stats;
    auto result = exec.Execute(*q, *plan->root, &stats, exec_options);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_ExecuteQ4RootThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_WorkloadRunOnce(benchmark::State& state) {
  auto& f = Fixture::Get();
  auto q2 = bsbm::MakeQ2(f.ds);
  core::WorkloadRunner runner(f.ds.store, &f.ds.dict);
  util::Rng rng(3);
  for (auto _ : state) {
    sparql::ParameterBinding b{
        {f.ds.products[static_cast<size_t>(
            rng.Uniform(f.ds.products.size()))]}};
    auto obs = runner.RunOnce(q2, b);
    benchmark::DoNotOptimize(obs.ok());
  }
}
BENCHMARK(BM_WorkloadRunOnce);

void BM_HashJoinTwoScans(benchmark::State& state) {
  auto& f = Fixture::Get();
  auto q = sparql::ParseQuery(
      "SELECT * WHERE { ?offer "
      "<http://rdfparams.org/bsbm/vocabulary#product> ?p . ?offer "
      "<http://rdfparams.org/bsbm/vocabulary#price> ?price . }");
  engine::Executor exec(f.ds.store, &f.ds.dict);
  for (auto _ : state) {
    engine::ExecutionStats stats;
    auto result = exec.Run(*q, &stats);
    benchmark::DoNotOptimize(result->num_rows());
  }
}
BENCHMARK(BM_HashJoinTwoScans);

void BM_PartitionedHashJoinThreads(benchmark::State& state) {
  // Forces the (partitioned) hash join: the root joins two materialized
  // two-pattern components, so neither input is a scan and ExecJoin cannot
  // fall back to the index nested-loop path.
  auto& f = Fixture::Get();
  const char* vocab = "http://rdfparams.org/bsbm/vocabulary#";
  auto q = sparql::ParseQuery(
      "SELECT * WHERE { ?offer <" + std::string(vocab) + "product> ?p . "
      "?offer <" + vocab + "price> ?price . "
      "?p <" + vocab + "productFeature> ?f . "
      "?p <" + vocab + "producer> ?maker . }");
  auto offers = opt::PlanNode::MakeJoin(
      opt::PlanNode::MakeScan(0, rdf::IndexOrder::kPOS),
      opt::PlanNode::MakeScan(1, rdf::IndexOrder::kPOS), {"offer"});
  auto products = opt::PlanNode::MakeJoin(
      opt::PlanNode::MakeScan(2, rdf::IndexOrder::kPOS),
      opt::PlanNode::MakeScan(3, rdf::IndexOrder::kPOS), {"p"});
  auto root = opt::PlanNode::MakeJoin(std::move(offers), std::move(products),
                                      {"p"});
  engine::Executor exec(f.ds.store, &f.ds.dict);
  engine::ExecOptions exec_options;
  exec_options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    engine::ExecutionStats stats;
    auto result = exec.Execute(*q, *root, &stats, exec_options);
    benchmark::DoNotOptimize(result->num_rows());
  }
}
BENCHMARK(BM_PartitionedHashJoinThreads)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

// Section III — the C_out cost function "strongly correlates with running
// time (ca. 85% Pearson correlation coefficient)".
//
// We pool observations from four templates (BSBM Q2/Q4, SNB Q2/Q3) under
// uniform parameter sampling and report the Pearson and Spearman
// correlation of (a) the executor's *observed* C_out (summed join output
// sizes) and (b) the optimizer's *estimated* C_out against wall time.
#include <cstdio>

#include "bench_common.h"
#include "bsbm/queries.h"
#include "core/workload.h"
#include "snb/queries.h"
#include "stats/correlation.h"
#include "util/rng.h"
#include "util/table.h"

using namespace rdfparams;

namespace {

struct Pooled {
  std::vector<double> runtime;
  std::vector<double> observed;
  std::vector<double> estimated;
};

void Collect(core::WorkloadRunner* runner, const sparql::QueryTemplate& tmpl,
             const core::ParameterDomain& domain, size_t n, util::Rng* rng,
             Pooled* pooled, util::TablePrinter* per_template) {
  auto obs = runner->RunAll(tmpl, domain.SampleN(rng, n));
  if (!obs.ok()) {
    std::fprintf(stderr, "%s: %s\n", tmpl.name().c_str(),
                 obs.status().ToString().c_str());
    return;
  }
  auto times = core::RuntimesOf(*obs);
  auto observed = core::ObservedCoutsOf(*obs);
  auto estimated = core::EstimatedCoutsOf(*obs);
  per_template->AddRow(
      {tmpl.name(), std::to_string(times.size()),
       util::StringPrintf("%.3f",
                          stats::PearsonCorrelation(observed, times)),
       util::StringPrintf("%.3f",
                          stats::PearsonCorrelation(estimated, times)),
       util::StringPrintf("%.3f",
                          stats::SpearmanCorrelation(observed, times))});
  pooled->runtime.insert(pooled->runtime.end(), times.begin(), times.end());
  pooled->observed.insert(pooled->observed.end(), observed.begin(),
                          observed.end());
  pooled->estimated.insert(pooled->estimated.end(), estimated.begin(),
                           estimated.end());
}

}  // namespace

int main(int argc, char** argv) {
  int64_t products = 10000;
  int64_t persons = 8000;
  int64_t bindings = 80;
  int64_t seed = 13;
  util::FlagParser flags;
  flags.AddInt64("products", &products, "BSBM products");
  flags.AddInt64("persons", &persons, "SNB persons");
  flags.AddInt64("bindings", &bindings, "bindings per template");
  flags.AddInt64("seed", &seed, "seed");
  if (int rc = bench::ParseBenchArgs(argc, argv, &flags); rc >= 0) return rc;

  bench::PrintHeader(
      "Section III: C_out vs runtime correlation",
      "C_out strongly correlates with running time (ca. 85% Pearson)");

  Pooled pooled;
  util::TablePrinter per_template({"template", "n", "Pearson(obs C_out)",
                                   "Pearson(est C_out)", "Spearman(obs)"});
  util::Rng rng(static_cast<uint64_t>(seed));

  {
    bsbm::Dataset ds = bsbm::Generate(
        bench::DefaultBsbmConfig(static_cast<uint64_t>(products),
                                 static_cast<uint64_t>(seed)));
    core::WorkloadRunner runner(ds.store, &ds.dict);
    {
      core::ParameterDomain d;
      d.AddSingle("product", bsbm::ProductDomain(ds));
      Collect(&runner, bsbm::MakeQ2(ds), d, static_cast<size_t>(bindings),
              &rng, &pooled, &per_template);
    }
    {
      core::ParameterDomain d;
      d.AddSingle("ProductType", bsbm::TypeDomain(ds));
      Collect(&runner, bsbm::MakeQ4(ds), d, static_cast<size_t>(bindings),
              &rng, &pooled, &per_template);
    }
  }
  {
    snb::Dataset ds = snb::Generate(
        bench::DefaultSnbConfig(static_cast<uint64_t>(persons),
                                static_cast<uint64_t>(seed)));
    core::WorkloadRunner runner(ds.store, &ds.dict);
    {
      core::ParameterDomain d;
      d.AddSingle("person", snb::PersonDomain(ds));
      Collect(&runner, snb::MakeQ2(ds), d, static_cast<size_t>(bindings),
              &rng, &pooled, &per_template);
    }
    {
      core::ParameterDomain d;
      d.AddSingle("person", snb::PersonDomain(ds));
      std::vector<std::vector<rdf::TermId>> pairs;
      for (const auto& b : snb::CountryPairDomain(ds)) {
        pairs.push_back(b.values);
      }
      d.AddTuples({"countryX", "countryY"}, pairs);
      Collect(&runner, snb::MakeQ3(ds), d, static_cast<size_t>(bindings),
              &rng, &pooled, &per_template);
    }
  }

  std::printf("%s\n", per_template.ToText().c_str());
  std::printf("pooled over %zu query executions:\n", pooled.runtime.size());
  std::printf("  Pearson(observed C_out, runtime)  = %.3f\n",
              stats::PearsonCorrelation(pooled.observed, pooled.runtime));
  std::printf("  Pearson(estimated C_out, runtime) = %.3f\n",
              stats::PearsonCorrelation(pooled.estimated, pooled.runtime));
  std::printf("  Spearman(observed C_out, runtime) = %.3f\n",
              stats::SpearmanCorrelation(pooled.observed, pooled.runtime));
  std::printf("  (paper: ca. 0.85 Pearson)\n");
  return 0;
}

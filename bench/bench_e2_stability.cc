// E2 — "Sampling is not stable".
//
// Reproduces the paper's group table for LDBC Q2 (newest 20 posts of the
// user's friends): 4 independent groups of uniform %person bindings; the
// reported aggregate (q10 / median / q90 / average) swings between groups
// (paper: up to 40% on averages, up to 100% on percentiles), and the same
// effect for BSBM-BI Q2 (mean diff <= 15%, median <= 25%).
#include <cstdio>

#include "bench_common.h"
#include "bsbm/queries.h"
#include "core/analysis.h"
#include "core/workload.h"
#include "snb/queries.h"
#include "util/rng.h"
#include "util/table.h"

using namespace rdfparams;

namespace {

void RunGroups(const char* label, core::WorkloadRunner* runner,
               const sparql::QueryTemplate& tmpl,
               const core::ParameterDomain& domain, size_t groups,
               size_t per_group, util::Rng* rng) {
  std::vector<std::vector<double>> group_times;
  for (size_t g = 0; g < groups; ++g) {
    auto obs = runner->RunAll(tmpl, domain.SampleN(rng, per_group));
    if (!obs.ok()) {
      std::fprintf(stderr, "%s\n", obs.status().ToString().c_str());
      return;
    }
    group_times.push_back(core::RuntimesOf(*obs));
  }
  core::StabilityReport report = core::AnalyzeStability(group_times);

  std::printf("%s: %zu groups x %zu bindings\n", label, groups, per_group);
  std::vector<std::string> header{"Time"};
  for (size_t g = 0; g < groups; ++g) {
    header.push_back("Group " + std::to_string(g + 1));
  }
  util::TablePrinter table(header);
  auto row = [&](const char* name, auto getter) {
    std::vector<std::string> cells{name};
    for (const core::GroupAggregates& g : report.groups) {
      cells.push_back(bench::Dur(getter(g)));
    }
    table.AddRow(std::move(cells));
  };
  row("q10", [](const core::GroupAggregates& g) { return g.q10; });
  row("Median", [](const core::GroupAggregates& g) { return g.median; });
  row("q90", [](const core::GroupAggregates& g) { return g.q90; });
  row("Average", [](const core::GroupAggregates& g) { return g.average; });
  std::printf("%s", table.ToText().c_str());
  std::printf("  group-to-group spread: average %.0f%%  median %.0f%%  "
              "q10 %.0f%%  q90 %.0f%%\n",
              report.average_spread * 100, report.median_spread * 100,
              report.q10_spread * 100, report.q90_spread * 100);
  std::printf("  max pairwise two-sample KS distance: %.3f\n\n",
              report.max_pairwise_ks);
}

}  // namespace

int main(int argc, char** argv) {
  int64_t persons = 8000;
  int64_t products = 10000;
  int64_t per_group = 100;
  int64_t groups = 4;
  int64_t seed = 7;
  util::FlagParser flags;
  flags.AddInt64("persons", &persons, "SNB persons");
  flags.AddInt64("products", &products, "BSBM products");
  flags.AddInt64("per_group", &per_group, "bindings per group");
  flags.AddInt64("groups", &groups, "number of independent groups");
  flags.AddInt64("seed", &seed, "seed");
  if (int rc = bench::ParseBenchArgs(argc, argv, &flags); rc >= 0) return rc;

  bench::PrintHeader(
      "E2: different uniform samples give different aggregate runtimes",
      "LDBC Q2 groups: avg deviates up to 40%, percentiles up to 100%; "
      "BSBM Q2: mean <=15%, median <=25%");

  {
    snb::Dataset ds = snb::Generate(
        bench::DefaultSnbConfig(static_cast<uint64_t>(persons),
                                static_cast<uint64_t>(seed)));
    std::printf("SNB dataset: %s triples, %zu posts\n\n",
                util::FormatCount(ds.store.size()).c_str(), ds.posts.size());
    core::WorkloadRunner runner(ds.store, &ds.dict);
    util::Rng rng(static_cast<uint64_t>(seed) + 100);
    auto q2 = snb::MakeQ2(ds);
    core::ParameterDomain domain;
    domain.AddSingle("person", snb::PersonDomain(ds));
    RunGroups("LDBC-style Q2 (newest 20 posts of friends)", &runner, q2,
              domain, static_cast<size_t>(groups),
              static_cast<size_t>(per_group), &rng);
  }

  {
    bsbm::Dataset ds = bsbm::Generate(
        bench::DefaultBsbmConfig(static_cast<uint64_t>(products),
                                 static_cast<uint64_t>(seed)));
    std::printf("BSBM dataset: %s triples\n\n",
                util::FormatCount(ds.store.size()).c_str());
    core::WorkloadRunner runner(ds.store, &ds.dict);
    util::Rng rng(static_cast<uint64_t>(seed) + 200);
    auto q2 = bsbm::MakeQ2(ds);
    core::ParameterDomain domain;
    domain.AddSingle("product", bsbm::ProductDomain(ds));
    RunGroups("BSBM-BI Q2 (top-10 most similar products)", &runner, q2,
              domain, static_cast<size_t>(groups),
              static_cast<size_t>(per_group), &rng);
  }
  return 0;
}

// E1 — "Runtime distribution has high variance".
//
// Paper claims reproduced here:
//   * BSBM-BI Q4 under uniform %ProductType sampling has enormous runtime
//     variance (paper: 674e6 ms^2 at 100M triples) because the parameter's
//     position in the type hierarchy dictates how much data is touched.
//   * BSBM-BI Q2's runtime distribution is far from normal: KS distance
//     0.89 with p ~ 1e-21 in the paper.
// Absolute numbers differ (smaller data, different engine); the *shape*
// (variance >> mean^2, KS distance >> 0, vanishing p-value) is the target.
#include <cstdio>

#include "bench_common.h"
#include "bsbm/queries.h"
#include "core/analysis.h"
#include "core/workload.h"
#include "stats/histogram.h"
#include "util/rng.h"

using namespace rdfparams;

int main(int argc, char** argv) {
  int64_t products = 10000;
  int64_t bindings = 100;
  int64_t seed = 42;
  util::FlagParser flags;
  flags.AddInt64("products", &products, "BSBM products");
  flags.AddInt64("bindings", &bindings, "bindings per workload");
  flags.AddInt64("seed", &seed, "seed");
  if (int rc = bench::ParseBenchArgs(argc, argv, &flags); rc >= 0) return rc;

  bench::PrintHeader(
      "E1: runtime variance under uniform parameter sampling (BSBM-BI)",
      "Q4 variance 674e6; Q2 vs normal: KS distance 0.89, p=1e-21");

  bsbm::Dataset ds = bsbm::Generate(
      bench::DefaultBsbmConfig(static_cast<uint64_t>(products),
                               static_cast<uint64_t>(seed)));
  std::printf("dataset: %s triples, %zu types (%zu leaves)\n\n",
              util::FormatCount(ds.store.size()).c_str(), ds.types.size(),
              ds.LeafTypeIds().size());

  core::WorkloadRunner runner(ds.store, &ds.dict);
  util::Rng rng(static_cast<uint64_t>(seed) * 3 + 1);

  // ---- Q4: variance of runtime over uniform ProductType ----------------
  {
    auto q4 = bsbm::MakeQ4(ds);
    core::ParameterDomain domain;
    domain.AddSingle("ProductType", bsbm::TypeDomain(ds));
    auto obs = runner.RunAll(
        q4, domain.SampleN(&rng, static_cast<size_t>(bindings)));
    if (!obs.ok()) {
      std::fprintf(stderr, "%s\n", obs.status().ToString().c_str());
      return 1;
    }
    auto times = core::RuntimesOf(*obs);
    stats::Summary s = stats::Summarize(times);
    // The paper reports variance in ms^2.
    std::vector<double> ms;
    for (double t : times) ms.push_back(t * 1e3);
    double var_ms = stats::Variance(ms);
    std::printf("Q4 (%zu uniform bindings over the type hierarchy):\n",
                times.size());
    std::printf("  mean %s  median %s  max %s\n", bench::Dur(s.mean).c_str(),
                bench::Dur(s.median).c_str(), bench::Dur(s.max).c_str());
    std::printf("  runtime variance: %.4g ms^2  (mean^2 = %.4g ms^2)\n",
                var_ms, (s.mean * 1e3) * (s.mean * 1e3));
    std::printf("  variance / mean^2: %.1f  (>1 means heavy spread; paper's"
                " 674e6 ms^2 at mean ~3.6 s gives ~52)\n",
                var_ms / ((s.mean * 1e3) * (s.mean * 1e3)));
    stats::Histogram h = stats::Histogram::MakeLog(
        std::max(s.min, 1e-7), std::max(s.max * 1.01, 1e-6), 24);
    h.AddAll(times);
    std::printf("  log-runtime histogram: |%s|\n\n", h.Sparkline().c_str());
  }

  // ---- Q2: KS distance from fitted normal -------------------------------
  {
    auto q2 = bsbm::MakeQ2(ds);
    core::ParameterDomain domain;
    domain.AddSingle("product", bsbm::ProductDomain(ds));
    auto obs = runner.RunAll(
        q2, domain.SampleN(&rng, static_cast<size_t>(bindings)));
    if (!obs.ok()) {
      std::fprintf(stderr, "%s\n", obs.status().ToString().c_str());
      return 1;
    }
    core::ShapeReport shape = core::AnalyzeShape(core::RuntimesOf(*obs));
    std::printf("Q2 (%lld uniform product bindings):\n",
                static_cast<long long>(bindings));
    std::printf("  mean %s  median %s  skewness %.2f\n",
                bench::Dur(shape.summary.mean).c_str(),
                bench::Dur(shape.summary.median).c_str(),
                shape.summary.skewness);
    std::printf("  Kolmogorov-Smirnov vs fitted normal: distance %.3f, "
                "p-value %.3g\n",
                shape.ks_vs_normal.distance, shape.ks_vs_normal.p_value);
    std::printf("  (paper: distance 0.89, p-value 1e-21 -> clearly "
                "non-normal)\n");
  }
  return 0;
}

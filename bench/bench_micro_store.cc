// Microbenchmarks for the RDF substrate: dictionary interning, store
// finalization (index builds), pattern counting and range scans.
#include <benchmark/benchmark.h>

#include "rdf/dictionary.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "util/rng.h"

namespace {

using namespace rdfparams;

rdf::TripleStore MakeStore(size_t n, rdf::Dictionary* dict) {
  util::Rng rng(17);
  rdf::TripleStore store;
  for (size_t i = 0; i < n; ++i) {
    store.Add(dict->InternIri("http://e/" +
                              std::to_string(rng.Uniform(n / 4 + 1))),
              dict->InternIri("http://p/" + std::to_string(rng.Uniform(16))),
              dict->InternIri("http://e/" +
                              std::to_string(rng.Uniform(n / 4 + 1))));
  }
  store.Finalize();
  return store;
}

void BM_DictionaryIntern(benchmark::State& state) {
  size_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    rdf::Dictionary dict;
    state.ResumeTiming();
    for (int k = 0; k < 1000; ++k) {
      benchmark::DoNotOptimize(
          dict.InternIri("http://entity/" + std::to_string(k)));
    }
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_DictionaryIntern);

void BM_DictionaryLookupHit(benchmark::State& state) {
  rdf::Dictionary dict;
  for (int k = 0; k < 10000; ++k) {
    dict.InternIri("http://entity/" + std::to_string(k));
  }
  util::Rng rng(3);
  for (auto _ : state) {
    auto id = dict.Find(rdf::Term::Iri(
        "http://entity/" + std::to_string(rng.Uniform(10000))));
    benchmark::DoNotOptimize(id);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DictionaryLookupHit);

void BM_StoreFinalize(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(11);
  std::vector<rdf::Triple> triples;
  triples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    triples.emplace_back(static_cast<rdf::TermId>(rng.Uniform(n / 4 + 1)),
                         static_cast<rdf::TermId>(rng.Uniform(16)),
                         static_cast<rdf::TermId>(rng.Uniform(n / 4 + 1)));
  }
  for (auto _ : state) {
    state.PauseTiming();
    rdf::TripleStore store;
    for (const rdf::Triple& t : triples) store.Add(t);
    state.ResumeTiming();
    store.Finalize();
    benchmark::DoNotOptimize(store.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_StoreFinalize)->Arg(10000)->Arg(100000);

void BM_CountPattern(benchmark::State& state) {
  rdf::Dictionary dict;
  rdf::TripleStore store = MakeStore(200000, &dict);
  util::Rng rng(5);
  auto preds = store.Predicates();
  for (auto _ : state) {
    rdf::TermId p = preds[static_cast<size_t>(rng.Uniform(preds.size()))];
    benchmark::DoNotOptimize(
        store.CountPattern(rdf::kWildcardId, p, rdf::kWildcardId));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CountPattern);

void BM_RangeScan(benchmark::State& state) {
  rdf::Dictionary dict;
  rdf::TripleStore store = MakeStore(200000, &dict);
  auto preds = store.Predicates();
  size_t k = 0;
  for (auto _ : state) {
    rdf::TermId p = preds[k++ % preds.size()];
    uint64_t count = 0;
    for (const rdf::Triple& t :
         store.Range(rdf::IndexOrder::kPOS, rdf::kWildcardId, p,
                     rdf::kWildcardId)) {
      count += t.o;
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_RangeScan);

void BM_NTriplesParse(benchmark::State& state) {
  std::string doc;
  for (int i = 0; i < 2000; ++i) {
    doc += "<http://e/" + std::to_string(i) + "> <http://p/name> \"entity " +
           std::to_string(i) + "\" .\n";
  }
  for (auto _ : state) {
    size_t count = 0;
    auto st = rdf::ParseNTriples(
        doc, [&](const rdf::Term&, const rdf::Term&, const rdf::Term&) {
          ++count;
        });
    benchmark::DoNotOptimize(st.ok());
    benchmark::DoNotOptimize(count);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_NTriplesParse);

}  // namespace

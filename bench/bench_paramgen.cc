// Section III solution — PARAMETERS FOR RDF BENCHMARKS, end to end.
//
// Clusters the parameter domain of BSBM Q4 and SNB Q3 by (optimal plan,
// C_out bucket), then demonstrates that properties P1-P3 hold *within*
// classes and fail for the pooled uniform workload:
//   P1 bounded variance, P2 stable across samples, P3 single plan.
// Also runs the ablations called out in DESIGN.md: cost-bucket width and
// candidate-sample size.
#include <cstdio>

#include "bench_common.h"
#include "bsbm/queries.h"
#include "core/analysis.h"
#include "core/plan_classifier.h"
#include "core/step_distribution.h"
#include "core/workload.h"
#include "snb/queries.h"
#include "util/rng.h"
#include "util/table.h"

using namespace rdfparams;

namespace {

/// Within-class vs pooled comparison for one template + domain.
void EvaluateClasses(const char* label, core::WorkloadRunner* runner,
                     const sparql::QueryTemplate& tmpl,
                     const core::ParameterDomain& domain,
                     const rdf::TripleStore& store,
                     const rdf::Dictionary& dict, size_t per_class,
                     util::Rng* rng) {
  std::printf("--- %s ---\n", label);

  // Pooled uniform baseline.
  auto pooled_obs = runner->RunAll(tmpl, domain.SampleN(rng, per_class * 2));
  if (!pooled_obs.ok()) {
    std::fprintf(stderr, "%s\n", pooled_obs.status().ToString().c_str());
    return;
  }
  core::ClassQuality pooled = core::AnalyzeClass(*pooled_obs);
  std::printf("pooled uniform: %zu bindings, %zu distinct plans, runtime cv "
              "%.2f\n\n",
              pooled.num_bindings, pooled.distinct_plans, pooled.runtime_cv);

  core::ClassifyOptions options;
  auto classes = core::ClassifyParameters(tmpl, domain, store, dict, options);
  if (!classes.ok()) {
    std::fprintf(stderr, "%s\n", classes.status().ToString().c_str());
    return;
  }

  util::TablePrinter table({"class", "share", "plan", "plans(P3)",
                            "cv(P1)", "grp spread(P2)", "median"});
  size_t shown = 0;
  for (const core::PlanClass& cls : classes->classes) {
    if (shown >= 8) break;
    if (cls.members.size() < 4) continue;
    ++shown;
    size_t n_cls = std::min(per_class, std::max<size_t>(4, cls.members.size()));
    // Very expensive classes (generic types) get a reduced sample so the
    // harness stays within its time budget; their stability is equally
    // visible from a handful of runs.
    int extra_groups = 2;
    if (cls.min_cout > 2e6) {
      n_cls = std::min<size_t>(n_cls, 3);
      extra_groups = 1;
    }
    auto bindings = core::SampleFromClass(cls, n_cls, rng);
    auto obs = runner->RunAll(tmpl, bindings);
    if (!obs.ok()) continue;
    core::ClassQuality quality = core::AnalyzeClass(*obs);
    // P2: further independent samples from the same class.
    std::vector<std::vector<double>> group_times;
    for (int g = 0; g < extra_groups; ++g) {
      auto more = runner->RunAll(
          tmpl, core::SampleFromClass(cls, n_cls, rng));
      if (more.ok()) group_times.push_back(core::RuntimesOf(*more));
    }
    double spread = 0;
    if (group_times.size() == 2) {
      spread = core::AnalyzeStability(group_times).average_spread;
    }
    table.AddRow({"S" + std::to_string(shown),
                  util::StringPrintf("%.1f%%", cls.fraction * 100),
                  cls.fingerprint, std::to_string(quality.distinct_plans),
                  util::StringPrintf("%.2f", quality.runtime_cv),
                  util::StringPrintf("%.0f%%", spread * 100),
                  bench::Dur(quality.runtime_summary.median)});
  }
  std::printf("%s\n", table.ToText().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int64_t products = 10000;
  int64_t persons = 8000;
  int64_t per_class = 40;
  int64_t seed = 23;
  bool ablations = true;
  util::FlagParser flags;
  flags.AddInt64("products", &products, "BSBM products");
  flags.AddInt64("persons", &persons, "SNB persons");
  flags.AddInt64("per_class", &per_class, "bindings sampled per class");
  flags.AddInt64("seed", &seed, "seed");
  flags.AddBool("ablations", &ablations, "run design-choice ablations");
  if (int rc = bench::ParseBenchArgs(argc, argv, &flags); rc >= 0) return rc;

  bench::PrintHeader(
      "Section III: parameter classes restore P1-P3",
      "split P into S1..Sk with equal plan (a), equal cost (b), "
      "distinct plans across classes (c)");

  util::Rng rng(static_cast<uint64_t>(seed));

  bsbm::Dataset bsbm_ds = bsbm::Generate(
      bench::DefaultBsbmConfig(static_cast<uint64_t>(products),
                               static_cast<uint64_t>(seed)));
  {
    core::WorkloadRunner runner(bsbm_ds.store, &bsbm_ds.dict);
    auto q4 = bsbm::MakeQ4(bsbm_ds);
    core::ParameterDomain domain;
    domain.AddSingle("ProductType", bsbm::TypeDomain(bsbm_ds));
    EvaluateClasses("BSBM Q4 over the ProductType domain", &runner, q4,
                    domain, bsbm_ds.store, bsbm_ds.dict,
                    static_cast<size_t>(per_class), &rng);
  }
  {
    snb::Dataset ds = snb::Generate(
        bench::DefaultSnbConfig(static_cast<uint64_t>(persons),
                                static_cast<uint64_t>(seed)));
    core::WorkloadRunner runner(ds.store, &ds.dict);
    auto q3 = snb::MakeQ3(ds);
    core::ParameterDomain domain;
    std::vector<rdf::TermId> probe(ds.persons.begin(),
                                   ds.persons.begin() + 2);
    domain.AddSingle("person", probe);
    std::vector<std::vector<rdf::TermId>> pairs;
    for (const auto& b : snb::CountryPairDomain(ds)) pairs.push_back(b.values);
    domain.AddTuples({"countryX", "countryY"}, pairs);
    EvaluateClasses("SNB Q3 over person x country pairs", &runner, q3,
                    domain, ds.store, ds.dict,
                    static_cast<size_t>(per_class), &rng);
  }

  if (!ablations) return 0;

  // ------------------------------------------------------------------
  // Ablation 1: cost-bucket width (condition (b) granularity).
  // ------------------------------------------------------------------
  std::printf("--- ablation: cost bucket log2-width (BSBM Q4) ---\n");
  {
    auto q4 = bsbm::MakeQ4(bsbm_ds);
    core::ParameterDomain domain;
    domain.AddSingle("ProductType", bsbm::TypeDomain(bsbm_ds));
    util::TablePrinter table(
        {"width", "classes", "largest class", "max cout ratio in class"});
    for (double width : {0.25, 0.5, 1.0, 2.0, 1e300}) {
      core::ClassifyOptions options;
      options.cost_bucket_log2_width = width;
      auto result = core::ClassifyParameters(q4, domain, bsbm_ds.store,
                                             bsbm_ds.dict, options);
      if (!result.ok()) continue;
      double worst_ratio = 1;
      for (const auto& cls : result->classes) {
        if (cls.min_cout > 0) {
          worst_ratio = std::max(worst_ratio, cls.max_cout / cls.min_cout);
        }
      }
      table.AddRow({width > 1e100 ? "inf (plan only)"
                                  : util::StringPrintf("%.2f", width),
                    std::to_string(result->classes.size()),
                    util::StringPrintf("%.0f%%",
                                       result->classes[0].fraction * 100),
                    util::StringPrintf("%.1fx", worst_ratio)});
    }
    std::printf("%s\n", table.ToText().c_str());
    std::printf("narrower buckets -> tighter condition (b) but more classes;"
                " 'inf' keeps only condition (a).\n\n");
  }

  // ------------------------------------------------------------------
  // Ablation 2: sampler comparison — uniform vs TPC-DS-style step
  // distribution (related work [10,12]) vs plan-class sampling.
  // ------------------------------------------------------------------
  std::printf("--- ablation: sampler comparison (BSBM Q4, runtime cv) ---\n");
  {
    core::WorkloadRunner runner(bsbm_ds.store, &bsbm_ds.dict);
    auto q4 = bsbm::MakeQ4(bsbm_ds);
    core::ParameterDomain domain;
    domain.AddSingle("ProductType", bsbm::TypeDomain(bsbm_ds));
    size_t n = static_cast<size_t>(per_class);
    util::TablePrinter table({"sampler", "runtime cv", "distinct plans",
                              "median"});

    auto report = [&](const char* name,
                      const std::vector<sparql::ParameterBinding>& b) {
      auto obs = runner.RunAll(q4, b);
      if (!obs.ok()) return;
      core::ClassQuality quality = core::AnalyzeClass(*obs);
      table.AddRow({name, util::StringPrintf("%.2f", quality.runtime_cv),
                    std::to_string(quality.distinct_plans),
                    bench::Dur(quality.runtime_summary.median)});
    };
    report("uniform", domain.SampleN(&rng, n));
    // Step shape down-weighting the front of the domain, where the BFS
    // type order puts the generic (expensive) types: weights 1:4:8:8.
    auto stepper = core::StepSampler::Create(&domain, {1, 4, 8, 8});
    if (stepper.ok()) report("step (1:4:8:8)", stepper->SampleN(&rng, n));
    core::ClassifyOptions options;
    auto classes = core::ClassifyParameters(q4, domain, bsbm_ds.store,
                                            bsbm_ds.dict, options);
    if (classes.ok() && !classes->classes.empty()) {
      report("largest plan class",
             core::SampleFromClass(classes->classes[0], n, &rng));
    }
    std::printf("%s", table.ToText().c_str());
    std::printf("step sampling reduces the tail by construction but stays "
                "plan-mixing;\nonly class sampling restores P3 (one plan) "
                "with bounded cv (P1).\n\n");
  }

  // ------------------------------------------------------------------
  // Ablation 3: candidate enumeration budget.
  // ------------------------------------------------------------------
  std::printf("--- ablation: candidate sample size (BSBM Q4) ---\n");
  {
    auto q4 = bsbm::MakeQ4(bsbm_ds);
    core::ParameterDomain domain;
    domain.AddSingle("ProductType", bsbm::TypeDomain(bsbm_ds));
    core::ClassifyOptions full;
    auto reference = core::ClassifyParameters(q4, domain, bsbm_ds.store,
                                              bsbm_ds.dict, full);
    if (reference.ok()) {
      util::TablePrinter table({"candidates", "classes found",
                                "vs full domain"});
      for (uint64_t max : {16ull, 32ull, 64ull, 128ull, 100000ull}) {
        core::ClassifyOptions options;
        options.max_candidates = max;
        auto result = core::ClassifyParameters(q4, domain, bsbm_ds.store,
                                               bsbm_ds.dict, options);
        if (!result.ok()) continue;
        table.AddRow({max > 10000 ? "full" : std::to_string(max),
                      std::to_string(result->classes.size()),
                      util::StringPrintf(
                          "%.0f%%", 100.0 *
                                        static_cast<double>(
                                            result->classes.size()) /
                                        static_cast<double>(
                                            reference->classes.size()))});
      }
      std::printf("%s\n", table.ToText().c_str());
      std::printf("small candidate samples already recover most classes; "
                  "rare classes need fuller enumeration.\n");
    }
  }
  return 0;
}

// E3 — "Average runtime is not representative".
//
// The paper's table for BSBM-BI Q4 under uniform ProductType sampling:
//
//     Min     Median   Mean   q95     Max
//     59 ms   354 ms   3.6 s  17.6 s  259 s
//
// i.e. the mean is >10x the median and *no* query actually runs near the
// mean: the distribution is two clusters (fast leaf types, slow generic
// types) with an empty middle. This harness regenerates that row plus the
// clustering evidence (mid-range mass, mode count, histogram).
#include <cstdio>

#include "bench_common.h"
#include "bsbm/queries.h"
#include "core/analysis.h"
#include "core/workload.h"
#include "stats/histogram.h"
#include "util/rng.h"
#include "util/table.h"

using namespace rdfparams;

int main(int argc, char** argv) {
  int64_t products = 10000;
  int64_t bindings = 150;
  int64_t seed = 42;
  util::FlagParser flags;
  flags.AddInt64("products", &products, "BSBM products");
  flags.AddInt64("bindings", &bindings, "uniform bindings");
  flags.AddInt64("seed", &seed, "seed");
  if (int rc = bench::ParseBenchArgs(argc, argv, &flags); rc >= 0) return rc;

  bench::PrintHeader(
      "E3: the average runtime corresponds to no actual query (BSBM Q4)",
      "Min 59ms / Median 354ms / Mean 3.6s / q95 17.6s / Max 259s; "
      "mean >10x median, empty middle");

  bsbm::Dataset ds = bsbm::Generate(
      bench::DefaultBsbmConfig(static_cast<uint64_t>(products),
                               static_cast<uint64_t>(seed)));
  std::printf("dataset: %s triples, type tree depth 4 x branching 4\n\n",
              util::FormatCount(ds.store.size()).c_str());

  core::WorkloadRunner runner(ds.store, &ds.dict);
  util::Rng rng(static_cast<uint64_t>(seed) + 5);
  auto q4 = bsbm::MakeQ4(ds);
  core::ParameterDomain domain;
  domain.AddSingle("ProductType", bsbm::TypeDomain(ds));

  auto obs =
      runner.RunAll(q4, domain.SampleN(&rng, static_cast<size_t>(bindings)));
  if (!obs.ok()) {
    std::fprintf(stderr, "%s\n", obs.status().ToString().c_str());
    return 1;
  }
  auto times = core::RuntimesOf(*obs);
  core::ShapeReport shape = core::AnalyzeShape(times);
  const stats::Summary& s = shape.summary;

  util::TablePrinter table({"Min", "Median", "Mean", "q95", "Max"});
  table.AddRow({bench::Dur(s.min), bench::Dur(s.median), bench::Dur(s.mean),
                bench::Dur(s.q95), bench::Dur(s.max)});
  std::printf("%s", table.ToText().c_str());

  std::printf("\nmean / median ratio: %.1fx (paper: ~10x)\n",
              shape.mean_over_median);
  std::printf("fraction of runs near the mean (middle third of the value "
              "range): %.1f%% (paper: 'almost no query in between')\n",
              shape.mid_mass_fraction * 100);

  stats::Histogram h = stats::Histogram::MakeLog(
      std::max(s.min, 1e-7), std::max(s.max * 1.01, 1e-6), 28);
  h.AddAll(times);
  std::printf("log-runtime histogram (%zu modes): |%s|\n", h.CountModes(),
              h.Sparkline().c_str());

  // Per-level breakdown: the mechanism behind the clusters.
  std::printf("\nper-type-level mean runtime (level 0 = most generic):\n");
  util::TablePrinter levels({"level", "types", "mean runtime", "mean C_out"});
  for (uint32_t level = 0; level <= 6; ++level) {
    std::vector<double> level_times;
    std::vector<double> level_couts;
    for (const core::RunObservation& o : *obs) {
      for (const auto& t : ds.types) {
        if (t.id == o.binding.values[0] && t.level == level) {
          level_times.push_back(o.seconds);
          level_couts.push_back(static_cast<double>(o.observed_cout));
        }
      }
    }
    if (level_times.empty()) continue;
    levels.AddRow({std::to_string(level), std::to_string(level_times.size()),
                   bench::Dur(stats::Mean(level_times)),
                   util::FormatSig(stats::Mean(level_couts), 3)});
  }
  std::printf("%s", levels.ToText().c_str());
  return 0;
}

// bench_snapshot — cold-start cost of opening a saved snapshot vs
// re-parsing the same dataset from N-Triples, across snapshot format
// versions and open modes.
//
// The point of the paged snapshot format is that a curation server should
// pay the text-parse + sort cost once, not on every start. Format v2
// additionally removes the dictionary re-intern from the open path: the
// arena / records / hash sections are adopted verbatim (copied, or
// borrowed straight from an mmap'd file). This bench measures
//
//   * the fresh N-Triples load (the baseline everything must reproduce),
//   * v1 open  — legacy byte-stream dictionary, re-interned term by term,
//   * v2 open, copied — raw sections bulk-read and adopted,
//   * v2 open, mmap   — raw sections borrowed zero-copy from the mapping,
//
// with a per-phase breakdown (checksum / dictionary / index runs / meta)
// for each open. Like the other identity benches it gates on the restored
// store being *byte-identical* to the fresh load in every mode: same
// TermIds, same terms, same index runs, same distinct counts. Any
// divergence exits non-zero, so the small ctest run
// (bench_snapshot_identity) doubles as a differential test. The headline
// target: a v2 open at least 3x faster than the v1 re-intern open, with
// the dictionary phase no longer dominant.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bench_common.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "storage/snapshot.h"
#include "util/file_io.h"
#include "util/flags.h"
#include "util/mmap_file.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace rdfparams;

namespace {

bool StoresIdentical(const rdf::Dictionary& dict_a,
                     const rdf::TripleStore& store_a,
                     const rdf::Dictionary& dict_b,
                     const rdf::TripleStore& store_b, const char* label) {
  if (dict_a.size() != dict_b.size()) {
    std::fprintf(stderr, "IDENTITY FAIL (%s): %zu vs %zu terms\n", label,
                 dict_a.size(), dict_b.size());
    return false;
  }
  for (size_t i = 0; i < dict_a.size(); ++i) {
    if (dict_a.term(static_cast<rdf::TermId>(i)) !=
        dict_b.term(static_cast<rdf::TermId>(i))) {
      std::fprintf(stderr, "IDENTITY FAIL (%s): term %zu differs\n", label, i);
      return false;
    }
  }
  if (store_a.all_indexes_built() != store_b.all_indexes_built()) {
    std::fprintf(stderr, "IDENTITY FAIL (%s): index set differs\n", label);
    return false;
  }
  for (rdf::IndexOrder order : store_a.BuiltIndexes()) {
    auto run_a = store_a.IndexRun(order);
    auto run_b = store_b.IndexRun(order);
    if (run_a.size() != run_b.size() ||
        !std::equal(run_a.begin(), run_a.end(), run_b.begin())) {
      std::fprintf(stderr, "IDENTITY FAIL (%s): %s run differs\n", label,
                   rdf::IndexOrderName(order));
      return false;
    }
  }
  if (store_a.NumDistinctSubjects() != store_b.NumDistinctSubjects() ||
      store_a.NumDistinctPredicates() != store_b.NumDistinctPredicates() ||
      store_a.NumDistinctObjects() != store_b.NumDistinctObjects()) {
    std::fprintf(stderr, "IDENTITY FAIL (%s): distinct counts differ\n",
                 label);
    return false;
  }
  return true;
}

struct OpenRun {
  const char* label;
  double seconds = 0;
  storage::OpenStats stats;
  bool ran = false;
};

void PrintOpenRun(const OpenRun& r) {
  if (!r.ran) {
    std::printf("  %-24s skipped (mmap unsupported on this platform)\n",
                r.label);
    return;
  }
  double dict_share =
      r.seconds > 0 ? 100.0 * r.stats.dict_seconds / r.seconds : 0.0;
  std::printf("  %-24s %-10s  checksum %-10s dict %-10s (%4.1f%%) "
              "runs %-10s meta %s\n",
              r.label, bench::Dur(r.seconds).c_str(),
              bench::Dur(r.stats.checksum_seconds).c_str(),
              bench::Dur(r.stats.dict_seconds).c_str(), dict_share,
              bench::Dur(r.stats.runs_seconds).c_str(),
              bench::Dur(r.stats.meta_seconds).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int64_t products = 6000;
  int64_t seed = 42;
  int64_t page_size = storage::kDefaultPageSize;
  util::FlagParser flags;
  flags.AddInt64("products", &products, "BSBM products");
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddInt64("page_size", &page_size, "snapshot page size in bytes");
  if (int rc = bench::ParseBenchArgs(argc, argv, &flags); rc >= 0) return rc;

  bench::PrintHeader(
      "bench_snapshot — snapshot opens (v1 re-intern / v2 copied / v2 mmap) "
      "vs N-Triples re-parse",
      "every open must reproduce the fresh load byte-for-byte; v2 adopts "
      "the dictionary arena verbatim instead of re-interning (target: >= 3x "
      "faster open than v1 with the dictionary phase no longer dominant)");

  // Setup (untimed): generate once, serialize as N-Triples text.
  const std::string nt_path = "bench_snapshot.tmp.nt";
  const std::string snap_v1 = "bench_snapshot.tmp.v1.snap";
  const std::string snap_v2 = "bench_snapshot.tmp.v2.snap";
  {
    bsbm::Dataset ds = bsbm::Generate(
        bench::DefaultBsbmConfig(static_cast<uint64_t>(products),
                                 static_cast<uint64_t>(seed)));
    std::ofstream os(nt_path, std::ios::trunc);
    Status st = rdf::WriteNTriples(ds.dict, ds.store, os);
    if (!st.ok() || !os) {
      std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Cold path 1: fresh N-Triples load (read + parse + finalize). This is
  // the dataset every comparison is against — ids are assigned by first
  // appearance in the text, exactly what a user re-parsing would get.
  rdf::Dictionary fresh_dict;
  rdf::TripleStore fresh_store;
  util::WallTimer load_timer;
  {
    auto data = util::ReadFileToString(nt_path);
    if (!data.ok()) {
      std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    Status st = rdf::LoadNTriples(*data, &fresh_dict, &fresh_store, {});
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    fresh_store.Finalize();
  }
  double load_seconds = load_timer.ElapsedSeconds();

  // Save both formats (timed for information; not part of the comparison).
  double save_seconds[2] = {0, 0};
  for (int v = 1; v <= 2; ++v) {
    storage::SaveOptions save_options;
    save_options.page_size = static_cast<uint32_t>(page_size);
    save_options.format_version = static_cast<uint32_t>(v);
    util::WallTimer save_timer;
    Status st = storage::Snapshot::Save(fresh_dict, fresh_store, {},
                                        v == 1 ? snap_v1 : snap_v2,
                                        save_options);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    save_seconds[v - 1] = save_timer.ElapsedSeconds();
  }

  // Cold path 2: the three snapshot opens, each identity-gated.
  OpenRun runs[3] = {{"v1 open (re-intern):"},
                     {"v2 open (copied):"},
                     {"v2 open (mmap):"}};
  bool identical = true;
  for (int i = 0; i < 3; ++i) {
    storage::OpenOptions options;
    options.stats = &runs[i].stats;
    options.mmap = i == 2 ? storage::MmapMode::kOn : storage::MmapMode::kOff;
    if (i == 2 && !util::MmapFile::Supported()) continue;
    const std::string& path = i == 0 ? snap_v1 : snap_v2;
    util::WallTimer open_timer;
    auto snap = storage::Snapshot::Open(path, options);
    if (!snap.ok()) {
      std::fprintf(stderr, "%s\n", snap.status().ToString().c_str());
      return 1;
    }
    runs[i].seconds = open_timer.ElapsedSeconds();
    runs[i].ran = true;
    identical = StoresIdentical(fresh_dict, fresh_store, snap->dict,
                                snap->store, runs[i].label) &&
                identical;
    if (i == 0 && runs[i].stats.format_version != 1) {
      std::fprintf(stderr, "expected a v1 file for the re-intern open\n");
      return 1;
    }
  }

  std::remove(nt_path.c_str());
  std::remove(snap_v1.c_str());
  std::remove(snap_v2.c_str());

  std::printf("\n%s triples, %zu terms (page size %lld)\n",
              util::FormatCount(fresh_store.size()).c_str(),
              fresh_dict.size(), static_cast<long long>(page_size));
  std::printf("  n-triples load (parse+finalize): %s\n",
              bench::Dur(load_seconds).c_str());
  std::printf("  snapshot save: v1 %s, v2 %s\n",
              bench::Dur(save_seconds[0]).c_str(),
              bench::Dur(save_seconds[1]).c_str());
  for (const OpenRun& r : runs) PrintOpenRun(r);

  const OpenRun& best_v2 = runs[2].ran ? runs[2] : runs[1];
  double vs_parse =
      best_v2.seconds > 0 ? load_seconds / best_v2.seconds : 0.0;
  double vs_v1 = best_v2.seconds > 0 ? runs[0].seconds / best_v2.seconds : 0.0;
  double dict_share = best_v2.seconds > 0
                          ? best_v2.stats.dict_seconds / best_v2.seconds
                          : 0.0;
  std::printf("  v2 open vs n-triples parse: %.1fx\n", vs_parse);
  std::printf("  v2 open vs v1 re-intern open: %.1fx %s\n", vs_v1,
              vs_v1 >= 3.0 ? "(>= 3x target met)" : "(below 3x target)");
  std::printf("  v2 dictionary phase share: %.1f%% %s\n", 100.0 * dict_share,
              dict_share < 0.5 ? "(no longer dominant)" : "(still dominant)");
  std::printf("identity: %s\n", identical ? "OK (byte-identical restore in "
                                            "every mode)"
                                          : "FAILED");
  return identical ? 0 : 1;
}

// bench_snapshot — cold-start cost of opening a saved snapshot vs
// re-parsing the same dataset from N-Triples.
//
// The point of the paged snapshot format is that a curation server should
// pay the text-parse + sort cost once, not on every start. This bench
// measures both paths from the same bytes and, like the other identity
// benches, gates on the restored store being *byte-identical* to the
// fresh load: same TermIds, same terms, same index runs, same distinct
// counts. Any divergence exits non-zero, so the small ctest run
// (bench_snapshot_identity) doubles as a differential test.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bench_common.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "storage/snapshot.h"
#include "util/file_io.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace rdfparams;

namespace {

bool StoresIdentical(const rdf::Dictionary& dict_a,
                     const rdf::TripleStore& store_a,
                     const rdf::Dictionary& dict_b,
                     const rdf::TripleStore& store_b) {
  if (dict_a.size() != dict_b.size()) {
    std::fprintf(stderr, "IDENTITY FAIL: %zu vs %zu terms\n", dict_a.size(),
                 dict_b.size());
    return false;
  }
  for (size_t i = 0; i < dict_a.size(); ++i) {
    if (dict_a.term(static_cast<rdf::TermId>(i)) !=
        dict_b.term(static_cast<rdf::TermId>(i))) {
      std::fprintf(stderr, "IDENTITY FAIL: term %zu differs\n", i);
      return false;
    }
  }
  if (store_a.all_indexes_built() != store_b.all_indexes_built()) {
    std::fprintf(stderr, "IDENTITY FAIL: index set differs\n");
    return false;
  }
  for (rdf::IndexOrder order : store_a.BuiltIndexes()) {
    auto run_a = store_a.IndexRun(order);
    auto run_b = store_b.IndexRun(order);
    if (run_a.size() != run_b.size() ||
        !std::equal(run_a.begin(), run_a.end(), run_b.begin())) {
      std::fprintf(stderr, "IDENTITY FAIL: %s run differs\n",
                   rdf::IndexOrderName(order));
      return false;
    }
  }
  if (store_a.NumDistinctSubjects() != store_b.NumDistinctSubjects() ||
      store_a.NumDistinctPredicates() != store_b.NumDistinctPredicates() ||
      store_a.NumDistinctObjects() != store_b.NumDistinctObjects()) {
    std::fprintf(stderr, "IDENTITY FAIL: distinct counts differ\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t products = 6000;
  int64_t seed = 42;
  int64_t page_size = storage::kDefaultPageSize;
  util::FlagParser flags;
  flags.AddInt64("products", &products, "BSBM products");
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddInt64("page_size", &page_size, "snapshot page size in bytes");
  if (int rc = bench::ParseBenchArgs(argc, argv, &flags); rc >= 0) return rc;

  bench::PrintHeader(
      "bench_snapshot — open-from-snapshot vs N-Triples re-parse cold start",
      "a snapshot open must reproduce the fresh load byte-for-byte while "
      "skipping the parse and the sorts (target: >= 5x faster; the floor "
      "is re-interning the dictionary, which both paths share)");

  // Setup (untimed): generate once, serialize as N-Triples text.
  const std::string nt_path = "bench_snapshot.tmp.nt";
  const std::string snap_path = "bench_snapshot.tmp.snap";
  {
    bsbm::Dataset ds = bsbm::Generate(
        bench::DefaultBsbmConfig(static_cast<uint64_t>(products),
                                 static_cast<uint64_t>(seed)));
    std::ofstream os(nt_path, std::ios::trunc);
    Status st = rdf::WriteNTriples(ds.dict, ds.store, os);
    if (!st.ok() || !os) {
      std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Cold path 1: fresh N-Triples load (read + parse + finalize). This is
  // the dataset every comparison is against — ids are assigned by first
  // appearance in the text, exactly what a user re-parsing would get.
  rdf::Dictionary fresh_dict;
  rdf::TripleStore fresh_store;
  util::WallTimer load_timer;
  {
    auto data = util::ReadFileToString(nt_path);
    if (!data.ok()) {
      std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    Status st = rdf::LoadNTriples(*data, &fresh_dict, &fresh_store, {});
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    fresh_store.Finalize();
  }
  double load_seconds = load_timer.ElapsedSeconds();

  // Save (timed for information; not part of the comparison).
  storage::SaveOptions save_options;
  save_options.page_size = static_cast<uint32_t>(page_size);
  util::WallTimer save_timer;
  Status st = storage::Snapshot::Save(fresh_dict, fresh_store, {}, snap_path,
                                      save_options);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  double save_seconds = save_timer.ElapsedSeconds();

  // Cold path 2: open the snapshot (checksum verify + restore).
  util::WallTimer open_timer;
  auto snap = storage::Snapshot::Open(snap_path);
  if (!snap.ok()) {
    std::fprintf(stderr, "%s\n", snap.status().ToString().c_str());
    return 1;
  }
  double open_seconds = open_timer.ElapsedSeconds();

  bool identical = StoresIdentical(fresh_dict, fresh_store, snap->dict,
                                   snap->store);
  std::remove(nt_path.c_str());
  std::remove(snap_path.c_str());

  double speedup = open_seconds > 0 ? load_seconds / open_seconds : 0.0;
  std::printf("\n%s triples, %zu terms (page size %lld)\n",
              util::FormatCount(fresh_store.size()).c_str(),
              fresh_dict.size(), static_cast<long long>(page_size));
  std::printf("  n-triples load (parse+finalize): %s\n",
              bench::Dur(load_seconds).c_str());
  std::printf("  snapshot save:                   %s\n",
              bench::Dur(save_seconds).c_str());
  std::printf("  snapshot open (verify+restore):  %s\n",
              bench::Dur(open_seconds).c_str());
  std::printf("  cold-start speedup: %.1fx %s\n", speedup,
              speedup >= 5.0 ? "(>= 5x target met)"
                             : "(below 5x target)");
  std::printf("identity: %s\n", identical ? "OK (byte-identical restore)"
                                          : "FAILED");
  return identical ? 0 : 1;
}

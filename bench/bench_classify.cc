// bench_classify — systems harness for the batched classification
// pipeline (signature-deduped optimizer DP + merge-sweep leaf counting +
// incremental re-classification).
//
// Four cases, each identity-gated against the per-candidate reference
// strategy (any divergence fails the process, so CI gates on the exit
// code):
//
//   1. BSBM-BI Q4 over the type domain and 2. SNB Q4 over the person
//      domain — real workloads; the dedup rate is whatever the data's
//      skew provides (SNB persons collapse strongly, BSBM types barely).
//   3. A synthetic skewed domain: K parameter values with identical
//      per-value structure under a 6-pattern template — the regime the
//      optimization targets (many candidates, few distinct optimizer
//      inputs, expensive DP). Asserts dp_runs_saved > 0 and reports the
//      serial speedup, which must be >= 2x on multi-pattern skew even on
//      a 1-core container (the win is dedup, not threading).
//   4. Incremental growth: one ClassificationSession classifying the
//      BSBM Q2 product domain at growing budgets; every step must equal
//      a fresh per-candidate run with that budget while reusing the
//      overlap.
//
// Wall-clock *thread* speedups are machine-limited on 1-core containers
// (see docs/BENCHMARKS.md); the dedup speedup of case 3 is not — it cuts
// work, not just spreads it.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bsbm/queries.h"
#include "core/classification_session.h"
#include "core/plan_classifier.h"
#include "rdf/turtle.h"
#include "snb/queries.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace rdfparams;

namespace {

struct Flags {
  int64_t products = 3000;
  int64_t persons = 3000;
  int64_t max_threads = 4;
  int64_t candidates = 4000;
  int64_t skew_values = 1500;
  int64_t skew_items = 6;
  int64_t seed = 42;
};

bool g_all_ok = true;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    g_all_ok = false;
  }
}

bool Identical(const core::Classification& a, const core::Classification& b) {
  if (a.num_candidates != b.num_candidates) return false;
  if (a.class_of_candidate != b.class_of_candidate) return false;
  if (a.classes.size() != b.classes.size()) return false;
  for (size_t i = 0; i < a.classes.size(); ++i) {
    const core::PlanClass& x = a.classes[i];
    const core::PlanClass& y = b.classes[i];
    if (x.fingerprint != y.fingerprint || x.cost_bucket != y.cost_bucket ||
        x.min_cout != y.min_cout || x.max_cout != y.max_cout ||
        x.fraction != y.fraction || x.members != y.members ||
        !(x.representative == y.representative)) {
      return false;
    }
  }
  return true;
}

core::ClassifyOptions MakeOptions(core::ClassifyStrategy strategy,
                                  int threads, uint64_t max_candidates,
                                  core::ClassifyStats* stats = nullptr) {
  core::ClassifyOptions options;
  options.strategy = strategy;
  options.threads = threads;
  options.max_candidates = max_candidates;
  options.stats = stats;
  return options;
}

/// One template/domain case: per-candidate serial baseline, then the
/// batched strategy at 1/2/…/max_threads, identity-gated. Returns the
/// serial batched speedup; `serial_stats`, when set, receives the t=1
/// batched run's ClassifyStats (saves callers a duplicate probe run).
double RunCase(const char* name, const sparql::QueryTemplate& tmpl,
               const core::ParameterDomain& domain,
               const rdf::TripleStore& store, const rdf::Dictionary& dict,
               uint64_t budget, int64_t max_threads,
               core::ClassifyStats* serial_stats = nullptr) {
  util::WallTimer baseline_timer;
  auto reference = core::ClassifyParameters(
      tmpl, domain, store, dict,
      MakeOptions(core::ClassifyStrategy::kPerCandidate, 1, budget));
  double baseline = baseline_timer.ElapsedSeconds();
  if (!reference.ok()) {
    std::fprintf(stderr, "FATAL: %s baseline failed: %s\n", name,
                 reference.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s: %llu candidates, per-candidate serial %s\n", name,
              static_cast<unsigned long long>(reference->num_candidates),
              bench::Dur(baseline).c_str());
  std::printf("  %-10s %-12s %-10s %-14s %-14s %s\n", "threads", "batched",
              "speedup", "dp-runs", "dp-saved", "identical");
  double serial_speedup = 0;
  for (int64_t t = 1; t <= max_threads; t *= 2) {
    core::ClassifyStats stats;
    util::WallTimer timer;
    auto batched = core::ClassifyParameters(
        tmpl, domain, store, dict,
        MakeOptions(core::ClassifyStrategy::kBatched, static_cast<int>(t),
                    budget, &stats));
    double elapsed = timer.ElapsedSeconds();
    if (!batched.ok()) {
      std::fprintf(stderr, "FATAL: %s batched failed: %s\n", name,
                   batched.status().ToString().c_str());
      std::exit(1);
    }
    bool identical = Identical(*reference, *batched);
    Check(identical, name);
    if (t == 1) {
      serial_speedup = elapsed > 0 ? baseline / elapsed : 0;
      if (serial_stats != nullptr) *serial_stats = stats;
    }
    std::printf("  %-10lld %-12s %-10.2f %-14llu %-14llu %s\n",
                static_cast<long long>(t), bench::Dur(elapsed).c_str(),
                elapsed > 0 ? baseline / elapsed : 0.0,
                static_cast<unsigned long long>(stats.dp_runs),
                static_cast<unsigned long long>(stats.dp_runs_saved),
                identical ? "yes" : "NO (BUG)");
  }
  std::printf("\n");
  return serial_speedup;
}

/// K parameter values with byte-identical per-value structure: the
/// skewed-domain limit. A 6-pattern chain makes the DP expensive relative
/// to one signature (4 leaf estimates + 15 pair probes).
void BuildSkewStore(int64_t values, int64_t items_per_value,
                    rdf::Dictionary* dict, rdf::TripleStore* store,
                    std::vector<rdf::TermId>* domain) {
  std::string doc = "@prefix x: <http://x/> .\n";
  for (int64_t t = 0; t < values; ++t) {
    for (int64_t j = 0; j < items_per_value; ++j) {
      std::string item = "x:i" + std::to_string(t * items_per_value + j);
      doc += item + " x:type x:T" + std::to_string(t) + " .\n";
      doc += item + " x:score x:S" + std::to_string(j % 7) + " .\n";
      doc += item + " x:tag x:G" + std::to_string(j % 5) + " .\n";
      doc += item + " x:owner x:P" + std::to_string(j % 11) + " .\n";
    }
  }
  for (int g = 0; g < 5; ++g) {
    doc += "x:G" + std::to_string(g) + " x:weight x:W" +
           std::to_string(g % 3) + " .\n";
  }
  for (int p = 0; p < 11; ++p) {
    doc += "x:P" + std::to_string(p) + " x:city x:C" + std::to_string(p % 4) +
           " .\n";
  }
  if (!rdf::LoadTurtle(doc, dict, store).ok()) {
    std::fprintf(stderr, "FATAL: cannot build the skew store\n");
    std::exit(1);
  }
  store->Finalize();
  for (int64_t t = 0; t < values; ++t) {
    auto id = dict->FindIri("http://x/T" + std::to_string(t));
    if (!id.has_value()) std::exit(1);
    domain->push_back(*id);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags f;
  util::FlagParser flags;
  flags.AddInt64("products", &f.products, "BSBM products");
  flags.AddInt64("persons", &f.persons, "SNB persons");
  flags.AddInt64("max_threads", &f.max_threads, "highest thread count");
  flags.AddInt64("candidates", &f.candidates, "candidate budget per case");
  flags.AddInt64("skew_values", &f.skew_values,
                 "parameter values in the synthetic skewed domain");
  flags.AddInt64("skew_items", &f.skew_items,
                 "items per value in the synthetic skewed domain");
  flags.AddInt64("seed", &f.seed, "generator seed");
  if (int rc = bench::ParseBenchArgs(argc, argv, &flags); rc >= 0) return rc;

  bench::PrintHeader(
      "bench_classify — batched candidate classification",
      "classification cost must track distinct optimizer inputs, not raw "
      "candidate count: batch-swept leaf counts, signature-deduped DP, "
      "and incremental growth, all byte-identical to the per-candidate "
      "reference");

  // Case 1: BSBM-BI Q4 over the type domain (little real skew: the
  // pairwise join statistics differ per type even when counts match).
  {
    auto config = bench::DefaultBsbmConfig(static_cast<uint64_t>(f.products),
                                           static_cast<uint64_t>(f.seed));
    bsbm::Dataset ds = bsbm::Generate(config);
    auto q4 = bsbm::MakeQ4(ds);
    core::ParameterDomain domain;
    domain.AddSingle("ProductType", bsbm::TypeDomain(ds));
    RunCase("BSBM Q4 / type domain", q4, domain, ds.store, ds.dict,
            static_cast<uint64_t>(f.candidates), f.max_threads);
  }

  // Case 2: SNB Q4 over the person domain (real skew: many persons share
  // degree profiles, so signatures collapse).
  {
    auto config = bench::DefaultSnbConfig(static_cast<uint64_t>(f.persons),
                                          static_cast<uint64_t>(f.seed));
    snb::Dataset ds = snb::Generate(config);
    auto q4 = snb::MakeQ4(ds);
    core::ParameterDomain domain;
    domain.AddSingle("person", snb::PersonDomain(ds));
    domain.AddSingle("tag", snb::TagDomain(ds));
    RunCase("SNB Q4 / person x tag domain", q4, domain, ds.store, ds.dict,
            static_cast<uint64_t>(f.candidates), f.max_threads);
  }

  // Case 3: the synthetic skewed domain — the acceptance gate.
  {
    rdf::Dictionary dict;
    rdf::TripleStore store;
    std::vector<rdf::TermId> values;
    BuildSkewStore(f.skew_values, f.skew_items, &dict, &store, &values);
    auto tmpl = sparql::QueryTemplate::Parse("SKEW-6P", R"(
PREFIX x: <http://x/>
SELECT ?i WHERE {
  ?i x:type %t .
  ?i x:score ?s .
  ?i x:tag ?g .
  ?g x:weight ?w .
  ?i x:owner ?o .
  ?o x:city ?c .
}
)");
    if (!tmpl.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", tmpl.status().ToString().c_str());
      return 1;
    }
    core::ParameterDomain domain;
    domain.AddSingle("t", values);

    core::ClassifyStats stats;
    double speedup = RunCase("synthetic skew / 6-pattern chain", *tmpl,
                             domain, store, dict,
                             static_cast<uint64_t>(f.skew_values),
                             f.max_threads, &stats);
    std::printf(
        "  skew dedup: %llu candidates -> %llu distinct signatures, "
        "%llu dp runs saved, serial dedup speedup %.2fx\n\n",
        static_cast<unsigned long long>(stats.num_candidates),
        static_cast<unsigned long long>(stats.distinct_signatures),
        static_cast<unsigned long long>(stats.dp_runs_saved), speedup);
    Check(stats.dp_runs_saved > 0, "skew case must save DP runs");
    // Wall-clock dedup speedup: machine noise can squeeze it on tiny
    // inputs, but the work reduction is structural; warn loudly rather
    // than flake CI on a timer.
    if (speedup < 2.0) {
      std::printf(
          "  note: serial speedup %.2fx below the 2x target (tiny input or "
          "noisy machine?)\n\n",
          speedup);
    }
  }

  // Case 4: incremental growth over one session (the ROADMAP's
  // 2k -> 100k shape, scaled to --products).
  {
    auto config = bench::DefaultBsbmConfig(static_cast<uint64_t>(f.products),
                                           static_cast<uint64_t>(f.seed));
    bsbm::Dataset ds = bsbm::Generate(config);
    auto q2 = bsbm::MakeQ2(ds);
    core::ParameterDomain domain;
    domain.AddSingle("product", bsbm::ProductDomain(ds));
    const uint64_t full = bsbm::ProductDomain(ds).size();

    core::ClassificationSession session(
        q2, ds.store, ds.dict,
        MakeOptions(core::ClassifyStrategy::kBatched, 1, 0));
    std::printf("incremental growth: BSBM Q2 / product domain (%llu "
                "products)\n",
                static_cast<unsigned long long>(full));
    std::printf("  %-10s %-12s %-12s %-12s %-12s %s\n", "budget", "grow",
                "fresh", "reused", "dp-runs", "identical");
    for (uint64_t budget : {full / 8, full / 2, full}) {
      if (budget == 0) continue;
      util::WallTimer grow_timer;
      auto grown = session.Classify(domain, budget);
      double grow_seconds = grow_timer.ElapsedSeconds();
      if (!grown.ok()) {
        std::fprintf(stderr, "FATAL: session grow failed\n");
        return 1;
      }
      util::WallTimer fresh_timer;
      auto fresh = core::ClassifyParameters(
          q2, domain, ds.store, ds.dict,
          MakeOptions(core::ClassifyStrategy::kPerCandidate, 1, budget));
      double fresh_seconds = fresh_timer.ElapsedSeconds();
      if (!fresh.ok()) {
        std::fprintf(stderr, "FATAL: fresh reference failed\n");
        return 1;
      }
      bool identical = Identical(*fresh, *grown);
      Check(identical, "incremental growth");
      std::printf("  %-10llu %-12s %-12s %-12llu %-12llu %s\n",
                  static_cast<unsigned long long>(budget),
                  bench::Dur(grow_seconds).c_str(),
                  bench::Dur(fresh_seconds).c_str(),
                  static_cast<unsigned long long>(
                      session.last_stats().reused_candidates),
                  static_cast<unsigned long long>(
                      session.last_stats().dp_runs),
                  identical ? "yes" : "NO (BUG)");
    }
    std::printf("\n");
  }

  if (!g_all_ok) {
    std::fprintf(stderr,
                 "\nFAIL: a batched classification diverged from the "
                 "per-candidate reference\n");
    return 1;
  }
  std::printf("all strategies byte-identical to the per-candidate "
              "reference: OK\n");
  return 0;
}

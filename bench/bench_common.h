// Shared helpers for the experiment harnesses: default dataset scales
// (chosen so the full bench suite finishes in minutes on a laptop) and
// common formatting.
#ifndef RDFPARAMS_BENCH_BENCH_COMMON_H_
#define RDFPARAMS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "bsbm/generator.h"
#include "snb/generator.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace rdfparams::bench {

/// Standard BSBM scale for experiments (~0.5M triples).
inline bsbm::GeneratorConfig DefaultBsbmConfig(uint64_t products = 6000,
                                               uint64_t seed = 42) {
  bsbm::GeneratorConfig config;
  config.num_products = products;
  // Depth 4 with branching 4 gives 341 types (256 leaves); Q4's cost is
  // super-linear in the subtree size (features x offers), so generic types
  // cost orders of magnitude more than leaves — the regime of E1/E3.
  config.type_depth = 4;
  config.type_branching = 4;
  config.offers_per_product = 3.0;
  config.seed = seed;
  return config;
}

/// Standard SNB scale for experiments (~0.6M triples).
inline snb::GeneratorConfig DefaultSnbConfig(uint64_t persons = 8000,
                                             uint64_t seed = 7) {
  snb::GeneratorConfig config;
  config.num_persons = persons;
  config.seed = seed;
  return config;
}

/// Shared argv handling for every bench, replacing a zoo of hand-rolled
/// copies that had drifted (swallowed parse errors, printed "OK" before
/// usage on --help, returned success for `--help --bogus`). Note that
/// FlagParser::Parse skips argv[0] itself — passing argc-1/argv+1 here is
/// the off-by-one that once made bench_load silently drop its first flag.
///
/// Returns -1 to continue, 0 to exit success (--help), 1 to exit failure;
/// i.e. `if (int rc = ParseBenchArgs(argc, argv, &flags); rc >= 0)
/// return rc;`. Covered by tests/bench_args_test.cc.
inline int ParseBenchArgs(int argc, char** argv, util::FlagParser* flags) {
  Status st = flags->Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n%s", st.ToString().c_str(),
                 flags->Usage(argv[0]).c_str());
    return 1;
  }
  if (flags->help_requested()) {
    std::printf("%s", flags->Usage(argv[0]).c_str());
    return 0;
  }
  return -1;
}

inline void PrintHeader(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

inline std::string Dur(double seconds) {
  return util::FormatDuration(seconds);
}

}  // namespace rdfparams::bench

#endif  // RDFPARAMS_BENCH_BENCH_COMMON_H_

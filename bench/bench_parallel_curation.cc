// Parallel curation pipeline harness: measures the wall-clock speedup of
// ClassifyParameters and WorkloadRunner::RunAll at increasing thread
// counts against the serial baseline, verifies that every thread count
// produces identical results, and reports the shared CardinalityCache hit
// rate — the two levers this repo uses to curate parameters at
// production scale.
//
//   ./bench_parallel_curation [--products=N] [--candidates=N]
//                             [--run_bindings=N] [--max_threads=N]
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "bsbm/queries.h"
#include "core/plan_classifier.h"
#include "core/workload.h"
#include "optimizer/cardinality_cache.h"
#include "util/status.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace rdfparams;

namespace {

bool SameClassification(const core::Classification& a,
                        const core::Classification& b) {
  if (a.num_candidates != b.num_candidates ||
      a.classes.size() != b.classes.size() ||
      a.class_of_candidate != b.class_of_candidate) {
    return false;
  }
  for (size_t i = 0; i < a.classes.size(); ++i) {
    const core::PlanClass& x = a.classes[i];
    const core::PlanClass& y = b.classes[i];
    if (x.fingerprint != y.fingerprint || x.cost_bucket != y.cost_bucket ||
        x.members != y.members ||
        !(x.representative == y.representative)) {
      return false;
    }
  }
  return true;
}

bool SameObservations(const std::vector<core::RunObservation>& a,
                      const std::vector<core::RunObservation>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].binding == b[i].binding) ||
        a[i].observed_cout != b[i].observed_cout ||
        a[i].est_cout != b[i].est_cout ||
        a[i].fingerprint != b[i].fingerprint ||
        a[i].result_rows != b[i].result_rows) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t products = 4000;
  int64_t candidates = 2000;
  int64_t run_bindings = 200;
  int64_t max_threads =
      static_cast<int64_t>(util::ThreadPool::ResolveThreads(0));
  util::FlagParser flags;
  flags.AddInt64("products", &products, "BSBM scale");
  flags.AddInt64("candidates", &candidates, "classification budget");
  flags.AddInt64("run_bindings", &run_bindings, "workload bindings");
  flags.AddInt64("max_threads", &max_threads, "highest thread count");
  if (int rc = bench::ParseBenchArgs(argc, argv, &flags); rc >= 0) return rc;

  std::printf("generating BSBM dataset (%lld products)...\n",
              static_cast<long long>(products));
  bsbm::Dataset ds = bsbm::Generate(
      bench::DefaultBsbmConfig(static_cast<uint64_t>(products)));
  std::printf("%zu triples, %zu terms, %u hardware threads\n\n",
              ds.store.size(), ds.dict.size(),
              static_cast<unsigned>(util::ThreadPool::ResolveThreads(0)));

  auto q4 = bsbm::MakeQ4(ds);
  core::ParameterDomain domain;
  domain.AddSingle("ProductType", bsbm::TypeDomain(ds));

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  // --- Stage 0: what the CardinalityCache alone buys (serial) -----------
  {
    std::vector<sparql::ParameterBinding> probe =
        domain.Enumerate(static_cast<uint64_t>(candidates));
    auto time_optimizer = [&](::rdfparams::opt::CardinalityCache* cache) {
      ::rdfparams::opt::OptimizeOptions options;
      options.cardinality_cache = cache;
      util::WallTimer timer;
      for (const sparql::ParameterBinding& b : probe) {
        auto q = q4.Bind(b, ds.dict);
        if (!q.ok()) continue;
        util::IgnoreStatus(
            ::rdfparams::opt::Optimize(*q, ds.store, ds.dict, options),
            "timing harness only measures optimizer wall time");
      }
      return timer.ElapsedSeconds();
    };
    double uncached = time_optimizer(nullptr);
    ::rdfparams::opt::CardinalityCache cache;
    double cached = time_optimizer(&cache);
    std::printf(
        "=== CardinalityCache (serial, %zu candidates) ===\n"
        "uncached %.3fs -> cached %.3fs (%.2fx, %.1f%% hit rate)\n\n",
        probe.size(), uncached, cached, uncached / cached,
        cache.HitRate() * 100);
  }

  // --- Stage 1: classification (the per-candidate optimizer DP) ---------
  std::printf("=== ClassifyParameters (%lld candidates) ===\n",
              static_cast<long long>(candidates));
  util::TablePrinter cls_table(
      {"threads", "seconds", "speedup", "cache hit rate", "identical"});
  core::Classification baseline;
  double serial_seconds = 0;
  for (int threads : thread_counts) {
    ::rdfparams::opt::CardinalityCache cache;
    core::ClassifyOptions options;
    options.max_candidates = static_cast<uint64_t>(candidates);
    options.threads = threads;
    // This harness gates the *per-candidate* DP's thread scaling (its PR 1
    // reason to exist); the signature-deduped default leaves too few DP
    // runs for thread counts to mean anything. bench_classify measures
    // the batched strategy.
    options.strategy = core::ClassifyStrategy::kPerCandidate;
    options.optimizer.cardinality_cache = &cache;
    util::WallTimer timer;
    auto result =
        core::ClassifyParameters(q4, domain, ds.store, ds.dict, options);
    double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    bool identical = true;
    if (threads == 1) {
      baseline = std::move(result).value();
      serial_seconds = seconds;
    } else {
      identical = SameClassification(baseline, *result);
    }
    cls_table.AddRow({std::to_string(threads),
                      util::StringPrintf("%.3f", seconds),
                      util::StringPrintf("%.2fx", serial_seconds / seconds),
                      util::StringPrintf("%.1f%%", cache.HitRate() * 100),
                      identical ? "yes" : "NO (BUG)"});
  }
  std::printf("%s\n", cls_table.ToText().c_str());

  // --- Stage 2: workload measurement ------------------------------------
  std::printf("=== WorkloadRunner::RunAll (%lld bindings) ===\n",
              static_cast<long long>(run_bindings));
  util::Rng rng(99);
  std::vector<sparql::ParameterBinding> bindings =
      domain.SampleN(&rng, static_cast<size_t>(run_bindings));
  const rdf::Dictionary& const_dict = ds.dict;
  core::WorkloadRunner runner(ds.store, const_dict);

  util::TablePrinter run_table(
      {"threads", "seconds", "speedup", "cache hit rate", "identical"});
  std::vector<core::RunObservation> run_baseline;
  double run_serial_seconds = 0;
  for (int threads : thread_counts) {
    ::rdfparams::opt::CardinalityCache cache;
    core::WorkloadOptions options;
    options.threads = threads;
    options.optimizer.cardinality_cache = &cache;
    util::WallTimer timer;
    auto obs = runner.RunAll(q4, bindings, options);
    double seconds = timer.ElapsedSeconds();
    if (!obs.ok()) {
      std::fprintf(stderr, "%s\n", obs.status().ToString().c_str());
      return 1;
    }
    bool identical = true;
    if (threads == 1) {
      run_baseline = std::move(obs).value();
      run_serial_seconds = seconds;
    } else {
      identical = SameObservations(run_baseline, *obs);
    }
    run_table.AddRow({std::to_string(threads),
                      util::StringPrintf("%.3f", seconds),
                      util::StringPrintf("%.2fx",
                                         run_serial_seconds / seconds),
                      util::StringPrintf("%.1f%%", cache.HitRate() * 100),
                      identical ? "yes" : "NO (BUG)"});
  }
  std::printf("%s", run_table.ToText().c_str());
  return 0;
}

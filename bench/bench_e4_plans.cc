// E4 — "Different plans for different parameters".
//
// LDBC Q3 finds friends-within-two-steps who have been to countries X and
// Y. The paper: "the optimal plan can start either with finding all the
// friends ... or from all the people that have been to countries X and Y:
// if X and Y are Finland and Zimbabwe there are supposedly very few people
// that have been to both, but if X and Y are USA and Canada this
// intersection is very large."
//
// This harness optimizes Q3 for every country pair, counts the distinct
// optimal plans, shows one EXPLAIN per plan shape, and verifies the
// mechanism by correlating the plan choice with |visitors(X) ^ visitors(Y)|.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "core/workload.h"
#include "snb/queries.h"
#include "stats/descriptive.h"
#include "util/rng.h"
#include "util/table.h"

using namespace rdfparams;

int main(int argc, char** argv) {
  int64_t persons = 8000;
  int64_t seed = 7;
  util::FlagParser flags;
  flags.AddInt64("persons", &persons, "SNB persons");
  flags.AddInt64("seed", &seed, "seed");
  if (int rc = bench::ParseBenchArgs(argc, argv, &flags); rc >= 0) return rc;

  bench::PrintHeader(
      "E4: the optimal plan flips with the parameter binding (LDBC Q3)",
      "friends-first for USA+Canada-like pairs, countries-first for "
      "Finland+Zimbabwe-like pairs");

  snb::Dataset ds = snb::Generate(
      bench::DefaultSnbConfig(static_cast<uint64_t>(persons),
                              static_cast<uint64_t>(seed)));
  std::printf("dataset: %s triples\n\n",
              util::FormatCount(ds.store.size()).c_str());

  auto q3 = snb::MakeQ3(ds);
  rdf::TermId p_been = *ds.dict.FindIri(ds.vocab.has_been_to);

  // Pick a mid-degree probe person so the friends side is neither empty nor
  // a hub.
  rdf::TermId p_knows = *ds.dict.FindIri(ds.vocab.knows);
  rdf::TermId person = ds.persons[0];
  for (rdf::TermId p : ds.persons) {
    uint64_t deg = ds.store.CountPattern(p, p_knows, rdf::kWildcardId);
    if (deg >= 8 && deg <= 20) {
      person = p;
      break;
    }
  }

  struct PlanGroup {
    size_t count = 0;
    std::vector<double> intersections;
    sparql::SelectQuery example_query;
    std::string example_pair;
    std::unique_ptr<opt::PlanNode> example_plan;
  };
  std::map<std::string, PlanGroup> groups;

  auto pairs = snb::CountryPairDomain(ds);
  size_t failures = 0;
  for (const auto& pair : pairs) {
    sparql::ParameterBinding b;
    b.values = {person, pair.values[0], pair.values[1]};
    auto q = q3.Bind(b, ds.dict);
    if (!q.ok()) {
      ++failures;
      continue;
    }
    auto plan = opt::Optimize(*q, ds.store, ds.dict);
    if (!plan.ok()) {
      ++failures;
      continue;
    }
    // True intersection size for the mechanism check.
    double intersection = 0;
    ds.store.ScanPattern(
        rdf::kWildcardId, p_been, pair.values[0], [&](const rdf::Triple& t) {
          intersection += static_cast<double>(
              ds.store.CountPattern(t.s, p_been, pair.values[1]));
        });
    PlanGroup& g = groups[plan->fingerprint];
    ++g.count;
    g.intersections.push_back(intersection);
    if (!g.example_plan) {
      g.example_plan = plan->root->Clone();
      g.example_query = *q;
      auto name = [&](rdf::TermId c) {
        std::string iri(ds.dict.term(c).lexical);
        return iri.substr(iri.rfind('_') + 1);
      };
      g.example_pair = name(pair.values[0]) + "+" + name(pair.values[1]);
    }
  }

  std::printf("optimized Q3 for %zu country pairs (person fixed): "
              "%zu distinct optimal plans, %zu failures\n\n",
              pairs.size(), groups.size(), failures);

  util::TablePrinter table({"plan", "pairs", "share", "median |X^Y|",
                            "example pair"});
  for (const auto& [fp, g] : groups) {
    std::vector<double> inter = g.intersections;
    table.AddRow({fp, std::to_string(g.count),
                  util::StringPrintf("%.1f%%",
                                     100.0 * static_cast<double>(g.count) /
                                         static_cast<double>(pairs.size())),
                  util::FormatSig(stats::Percentile(inter, 0.5), 4),
                  g.example_pair});
  }
  std::printf("%s\n", table.ToText().c_str());

  for (const auto& [fp, g] : groups) {
    std::printf("plan %s (example: %s):\n%s\n", fp.c_str(),
                g.example_pair.c_str(),
                g.example_plan->Explain(g.example_query).c_str());
  }

  if (groups.size() >= 2) {
    std::printf("=> plan variability confirmed: the median co-visit "
                "intersection differs across plan classes, matching the "
                "paper's mechanism.\n");
  } else {
    std::printf("WARNING: only one plan shape found; increase --persons to "
                "strengthen the correlations.\n");
  }
  return 0;
}

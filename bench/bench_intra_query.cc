// Intra-query parallel execution harness: measures per-query wall time of
// the morsel-parallel index join, the partitioned hash join, the group-by
// slice-merge reduction, and the ORDER BY parallel merge sort at
// increasing exec-thread counts against the serial baseline, and verifies
// that every configuration returns a byte-identical result table and
// identical ExecutionStats counters.
//
//   ./bench_intra_query [--products=N] [--max_threads=N] [--morsel_size=N]
//                       [--reps=N]
#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_common.h"
#include "bsbm/queries.h"
#include "engine/executor.h"
#include "optimizer/optimizer.h"
#include "sparql/parser.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace rdfparams;

namespace {

bool SameCounters(const engine::ExecutionStats& a,
                  const engine::ExecutionStats& b) {
  return a.intermediate_rows == b.intermediate_rows &&
         a.scan_rows == b.scan_rows && a.result_rows == b.result_rows;
}

struct Case {
  std::string name;
  sparql::SelectQuery query;
  std::unique_ptr<opt::PlanNode> plan;  ///< null: use the optimizer's plan
};

/// Returns false when any configuration failed or mismatched the serial
/// baseline — main() turns that into a nonzero exit so CI can gate on it.
bool RunCase(const Case& c, bsbm::Dataset* ds,
             const std::vector<int>& thread_counts, uint64_t morsel_size,
             int reps) {
  std::unique_ptr<opt::PlanNode> plan;
  if (c.plan != nullptr) {
    plan = c.plan->Clone();
  } else {
    auto optimized = opt::Optimize(c.query, ds->store, ds->dict);
    if (!optimized.ok()) {
      std::fprintf(stderr, "%s: %s\n", c.name.c_str(),
                   optimized.status().ToString().c_str());
      return false;
    }
    plan = std::move(optimized->root);
  }

  engine::Executor exec(ds->store, &ds->dict);
  util::TablePrinter table({"exec-threads", "seconds", "speedup", "rows",
                            "identical"});
  engine::BindingTable baseline;
  engine::ExecutionStats baseline_stats;
  double serial_seconds = 0;
  bool all_identical = true;
  for (int threads : thread_counts) {
    engine::ExecOptions options;
    options.threads = threads;
    options.morsel_size = morsel_size;
    engine::BindingTable result;
    engine::ExecutionStats stats;
    double seconds = std::numeric_limits<double>::infinity();
    for (int r = 0; r < std::max(reps, 1); ++r) {
      auto run = exec.Execute(c.query, *plan, &stats, options);
      if (!run.ok()) {
        std::fprintf(stderr, "%s: %s\n", c.name.c_str(),
                     run.status().ToString().c_str());
        return false;
      }
      seconds = std::min(seconds, stats.wall_seconds);
      result = std::move(run).value();
    }
    bool identical = true;
    if (threads == thread_counts.front()) {
      baseline = std::move(result);
      baseline_stats = stats;
      serial_seconds = seconds;
    } else {
      identical = baseline == result && SameCounters(baseline_stats, stats);
      all_identical = all_identical && identical;
    }
    table.AddRow({std::to_string(threads),
                  util::StringPrintf("%.4f", seconds),
                  util::StringPrintf("%.2fx", serial_seconds / seconds),
                  std::to_string(baseline.num_rows()),
                  identical ? "yes" : "NO (BUG)"});
  }
  std::printf("=== %s ===\n%s\n", c.name.c_str(), table.ToText().c_str());
  return all_identical;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t products = 4000;
  int64_t max_threads =
      static_cast<int64_t>(util::ThreadPool::ResolveThreads(0));
  int64_t morsel_size = 1024;
  int64_t reps = 3;
  util::FlagParser flags;
  flags.AddInt64("products", &products, "BSBM scale");
  flags.AddInt64("max_threads", &max_threads, "highest exec-thread count");
  flags.AddInt64("morsel_size", &morsel_size, "probe rows per morsel");
  flags.AddInt64("reps", &reps, "repetitions per config (min wall time kept)");
  if (int rc = bench::ParseBenchArgs(argc, argv, &flags); rc >= 0) return rc;

  std::printf("generating BSBM dataset (%lld products)...\n",
              static_cast<long long>(products));
  bsbm::Dataset ds = bsbm::Generate(
      bench::DefaultBsbmConfig(static_cast<uint64_t>(products)));
  std::printf("%zu triples, %zu terms, %u hardware threads\n\n",
              ds.store.size(), ds.dict.size(),
              static_cast<unsigned>(util::ThreadPool::ResolveThreads(0)));

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  const std::string root_type =
      "<" + std::string(ds.dict.term(ds.types[0].id).lexical) + ">";
  const char* vocab = "http://rdfparams.org/bsbm/vocabulary#";

  std::vector<Case> cases;

  // Morsel index-join chain at the generic root type: every offer of every
  // product of the type is probed through the store's indexes.
  {
    Case c;
    c.name = "index-join chain (type -> feature -> offer -> price)";
    auto q = sparql::ParseQuery(
        "SELECT * WHERE { "
        "?p <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> " +
        root_type + " . ?p <" + std::string(vocab) + "productFeature> ?f . "
        "?offer <" + vocab + "product> ?p . "
        "?offer <" + vocab + "price> ?price . }");
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    c.query = std::move(q).value();
    cases.push_back(std::move(c));
  }

  // Partitioned hash join: a hand-built bushy plan whose root joins two
  // materialized two-pattern components on ?p, so the executor cannot fall
  // back to the index nested-loop path.
  {
    Case c;
    c.name = "partitioned hash join (offersxprices JOIN typesxfeatures)";
    auto q = sparql::ParseQuery(
        "SELECT * WHERE { "
        "?offer <" + std::string(vocab) + "product> ?p . "
        "?offer <" + vocab + "price> ?price . "
        "?p <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> " + root_type +
        " . ?p <" + vocab + "productFeature> ?f . }");
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    c.query = std::move(q).value();
    auto offers = opt::PlanNode::MakeJoin(
        opt::PlanNode::MakeScan(0, rdf::IndexOrder::kPOS),
        opt::PlanNode::MakeScan(1, rdf::IndexOrder::kPOS), {"offer"});
    auto typed = opt::PlanNode::MakeJoin(
        opt::PlanNode::MakeScan(2, rdf::IndexOrder::kPOS),
        opt::PlanNode::MakeScan(3, rdf::IndexOrder::kPOS), {"p"});
    c.plan = opt::PlanNode::MakeJoin(std::move(offers), std::move(typed),
                                     {"p"});
    cases.push_back(std::move(c));
  }

  // Group-by-heavy: AVG/COUNT of every offer price per product — ~one
  // group per product, streamed through the canonical slice-merge
  // reduction (the root probe stays serial; slice partials reduce on the
  // pool).
  {
    Case c;
    c.name = "group-by reduction (avg/count offer price per product)";
    auto q = sparql::ParseQuery(
        "SELECT ?p (AVG(?price) AS ?avg) (COUNT(?price) AS ?n) WHERE { "
        "?offer <" + std::string(vocab) + "product> ?p . "
        "?offer <" + vocab + "price> ?price . } GROUP BY ?p");
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    c.query = std::move(q).value();
    cases.push_back(std::move(c));
  }

  // ORDER-BY-heavy: materialize every (offer, price) pair and sort it
  // descending by price — the parallel merge sort dominates the profile.
  {
    Case c;
    c.name = "order-by merge sort (all offers by price desc)";
    auto q = sparql::ParseQuery(
        "SELECT * WHERE { "
        "?offer <" + std::string(vocab) + "product> ?p . "
        "?offer <" + vocab + "price> ?price . } "
        "ORDER BY DESC(?price) ?offer");
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    c.query = std::move(q).value();
    cases.push_back(std::move(c));
  }

  // Streaming aggregate (BSBM Q4 at the root type): the root probe is
  // serial (it anchors the floating-point accumulation order), but its
  // output slices reduce on the pool and the child joins parallelize.
  {
    Case c;
    c.name = "streaming aggregate (BSBM Q4, root type; serial root probe)";
    auto q4 = bsbm::MakeQ4(ds);
    auto q = q4.Bind(sparql::ParameterBinding{{ds.types[0].id}}, ds.dict);
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    c.query = std::move(q).value();
    cases.push_back(std::move(c));
  }

  bool ok = true;
  for (const Case& c : cases) {
    ok &= RunCase(c, &ds, thread_counts, static_cast<uint64_t>(morsel_size),
                  static_cast<int>(reps));
  }
  std::printf(
      "(speedup is machine-limited by hardware threads; results and stats\n"
      " counters are asserted byte-identical at every thread count)\n");
  if (!ok) std::fprintf(stderr, "FAILED: parallel/serial mismatch\n");
  return ok ? 0 : 1;
}

// Vectorized-executor harness: measures single-thread wall time of the
// chunked columnar operators (vectorized filter, chunked hash probe,
// merge join over sorted index runs) against the row-at-a-time reference
// kernels (chunk_rows = 0, merge join off), and verifies that both
// configurations return byte-identical result tables and identical
// ExecutionStats counters. Runs serial on purpose: chunking and the merge
// sweep are per-core wins, independent of the morsel parallelism that
// bench_intra_query measures.
//
//   ./bench_vectorized [--products=N] [--chunk_rows=N] [--reps=N]
#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_common.h"
#include "engine/executor.h"
#include "optimizer/optimizer.h"
#include "sparql/parser.h"
#include "util/table.h"

using namespace rdfparams;

namespace {

bool SameCounters(const engine::ExecutionStats& a,
                  const engine::ExecutionStats& b) {
  return a.intermediate_rows == b.intermediate_rows &&
         a.scan_rows == b.scan_rows && a.result_rows == b.result_rows;
}

struct Case {
  std::string name;
  sparql::SelectQuery query;
  std::unique_ptr<opt::PlanNode> plan;  ///< null: use the optimizer's plan
};

struct Config {
  std::string name;
  engine::ExecOptions options;
};

/// Returns false when any configuration failed or mismatched the
/// row-at-a-time baseline — main() turns that into a nonzero exit so CI
/// can gate on it (ctest target bench_vectorized_identity).
bool RunCase(const Case& c, bsbm::Dataset* ds,
             const std::vector<Config>& configs, int reps) {
  std::unique_ptr<opt::PlanNode> plan;
  if (c.plan != nullptr) {
    plan = c.plan->Clone();
  } else {
    auto optimized = opt::Optimize(c.query, ds->store, ds->dict);
    if (!optimized.ok()) {
      std::fprintf(stderr, "%s: %s\n", c.name.c_str(),
                   optimized.status().ToString().c_str());
      return false;
    }
    plan = std::move(optimized->root);
  }

  engine::Executor exec(ds->store, &ds->dict);
  util::TablePrinter table({"config", "seconds", "speedup", "rows",
                            "identical"});
  engine::BindingTable baseline;
  engine::ExecutionStats baseline_stats;
  double baseline_seconds = 0;
  bool all_identical = true;
  for (const Config& config : configs) {
    engine::BindingTable result;
    engine::ExecutionStats stats;
    double seconds = std::numeric_limits<double>::infinity();
    for (int r = 0; r < std::max(reps, 1); ++r) {
      auto run = exec.Execute(c.query, *plan, &stats, config.options);
      if (!run.ok()) {
        std::fprintf(stderr, "%s: %s\n", c.name.c_str(),
                     run.status().ToString().c_str());
        return false;
      }
      seconds = std::min(seconds, stats.wall_seconds);
      result = std::move(run).value();
    }
    bool identical = true;
    if (&config == &configs.front()) {
      baseline = std::move(result);
      baseline_stats = stats;
      baseline_seconds = seconds;
    } else {
      identical = baseline == result && SameCounters(baseline_stats, stats);
      all_identical = all_identical && identical;
    }
    table.AddRow({config.name, util::StringPrintf("%.4f", seconds),
                  util::StringPrintf("%.2fx", baseline_seconds / seconds),
                  std::to_string(baseline.num_rows()),
                  identical ? "yes" : "NO (BUG)"});
  }
  std::printf("=== %s ===\n%s\n", c.name.c_str(), table.ToText().c_str());
  return all_identical;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t products = 4000;
  int64_t chunk_rows = 1024;
  int64_t reps = 3;
  util::FlagParser flags;
  flags.AddInt64("products", &products, "BSBM scale");
  flags.AddInt64("chunk_rows", &chunk_rows, "vectorization chunk width");
  flags.AddInt64("reps", &reps, "repetitions per config (min wall time kept)");
  if (int rc = bench::ParseBenchArgs(argc, argv, &flags); rc >= 0) return rc;

  std::printf("generating BSBM dataset (%lld products)...\n",
              static_cast<long long>(products));
  bsbm::Dataset ds = bsbm::Generate(
      bench::DefaultBsbmConfig(static_cast<uint64_t>(products)));
  std::printf("%zu triples, %zu terms\n\n", ds.store.size(), ds.dict.size());

  // Both configs run serial: the comparison isolates the kernels.
  std::vector<Config> configs(2);
  configs[0].name = "row-at-a-time";
  configs[0].options.threads = 1;
  configs[0].options.chunk_rows = 0;
  configs[0].options.enable_merge_join = false;
  configs[1].name = "chunked+merge";
  configs[1].options.threads = 1;
  configs[1].options.chunk_rows = static_cast<uint64_t>(chunk_rows);
  configs[1].options.enable_merge_join = true;

  const std::string root_type =
      "<" + std::string(ds.dict.term(ds.types[0].id).lexical) + ">";
  const char* vocab = "http://rdfparams.org/bsbm/vocabulary#";

  std::vector<Case> cases;

  // Filter-heavy: one big scan of every offer price, then a selective
  // numeric FILTER — the vectorized path scans columnar, evaluates the
  // predicate over the price column only, and gathers survivors, instead
  // of copying every surviving row term-by-term.
  {
    Case c;
    c.name = "filter-heavy (all offer prices, FILTER > 40)";
    auto q = sparql::ParseQuery(
        "SELECT * WHERE { ?offer <" + std::string(vocab) +
        "price> ?price . FILTER(?price > 40) }");
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    c.query = std::move(q).value();
    cases.push_back(std::move(c));
  }

  // Probe-heavy: a hand-built bushy plan whose root hash-joins two
  // materialized components, so the serial chunked probe (column-wise key
  // hashing + gather materialization) carries the work.
  {
    Case c;
    c.name = "probe-heavy (offersxprices HASH JOIN typesxfeatures)";
    auto q = sparql::ParseQuery(
        "SELECT * WHERE { "
        "?offer <" + std::string(vocab) + "product> ?p . "
        "?offer <" + vocab + "price> ?price . "
        "?p <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> " + root_type +
        " . ?p <" + vocab + "productFeature> ?f . }");
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    c.query = std::move(q).value();
    auto offers = opt::PlanNode::MakeJoin(
        opt::PlanNode::MakeScan(0, rdf::IndexOrder::kPOS),
        opt::PlanNode::MakeScan(1, rdf::IndexOrder::kPOS), {"offer"});
    auto typed = opt::PlanNode::MakeJoin(
        opt::PlanNode::MakeScan(2, rdf::IndexOrder::kPOS),
        opt::PlanNode::MakeScan(3, rdf::IndexOrder::kPOS), {"p"});
    c.plan = opt::PlanNode::MakeJoin(std::move(offers), std::move(typed),
                                     {"p"});
    cases.push_back(std::move(c));
  }

  // Merge-join-eligible: the outer scan reads a POS region (?p is the
  // index's tertiary key, so it comes out sorted) and the hinted inner
  // probe becomes one galloping sweep over the covering SPO run instead
  // of a full binary search per outer row.
  {
    Case c;
    c.name = "merge-join (typed products -> features, sorted outer)";
    auto q = sparql::ParseQuery(
        "SELECT * WHERE { "
        "?p <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> " + root_type +
        " . ?p <" + std::string(vocab) + "productFeature> ?f . }");
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    c.query = std::move(q).value();
    c.plan = opt::PlanNode::MakeJoin(
        opt::PlanNode::MakeScan(0, rdf::IndexOrder::kPOS),
        opt::PlanNode::MakeScan(1, rdf::IndexOrder::kSPO), {"p"});
    c.plan->merge_join_hint = true;
    cases.push_back(std::move(c));
  }

  bool ok = true;
  for (const Case& c : cases) {
    ok &= RunCase(c, &ds, configs, static_cast<int>(reps));
  }
  std::printf(
      "(single-thread comparison; results and stats counters are asserted\n"
      " byte-identical between the chunked and row-at-a-time kernels)\n");
  if (!ok) std::fprintf(stderr, "FAILED: chunked/row kernel mismatch\n");
  return ok ? 0 : 1;
}

// bench_server — throughput/latency harness for the workload daemon.
//
// Starts a loopback server on an ephemeral port, then drives mixed
// classify + run traffic from --clients concurrent connections, sweeping
// the server worker count 1/2/4/…/--max_threads. Reports QPS and p50/p99
// per-request latency per configuration. Every response is checked
// byte-identical to the in-process result rendered with the shared
// protocol formatters; any divergence fails the process, so CI can gate
// on the exit code (bench_server_identity) exactly like the other
// harnesses. Wall-clock speedups are machine-limited on small containers;
// the identity columns are the part that always bites.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/plan_classifier.h"
#include "core/workload.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/service.h"
#include "server/workbench.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace rdfparams;

namespace {

constexpr int64_t kQuery = 4;
constexpr int64_t kClassifyBudget = 200;
constexpr int64_t kRunBindings = 10;
constexpr int64_t kRunSeed = 7;

struct TrafficResult {
  std::vector<double> latencies;  // seconds, one per request
  uint64_t mismatches = 0;
  uint64_t errors = 0;
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

/// One client connection issuing `requests` alternating classify / run
/// calls, timing each round trip and checking the bytes.
void DriveClient(uint16_t port, int64_t requests,
                 const std::string& classify_want,
                 const std::string& run_want, TrafficResult* out) {
  server::Client client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    out->errors += static_cast<uint64_t>(requests);
    return;
  }
  std::string classify_payload =
      "query=" + std::to_string(kQuery) +
      "\nmax_candidates=" + std::to_string(kClassifyBudget);
  std::string run_payload = "query=" + std::to_string(kQuery) +
                            "\nn=" + std::to_string(kRunBindings) +
                            "\nseed=" + std::to_string(kRunSeed);
  for (int64_t i = 0; i < requests; ++i) {
    bool classify = (i % 2) == 0;
    util::WallTimer timer;
    auto frame = client.Call(
        classify ? server::Opcode::kClassify : server::Opcode::kRun,
        classify ? classify_payload : run_payload);
    double elapsed = timer.ElapsedSeconds();
    if (!frame.ok() ||
        frame->opcode != static_cast<uint8_t>(server::Opcode::kOk)) {
      ++out->errors;
      continue;
    }
    if (frame->payload != (classify ? classify_want : run_want)) {
      ++out->mismatches;
      continue;
    }
    out->latencies.push_back(elapsed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int64_t products = 3000;
  int64_t seed = 42;
  int64_t max_threads = 8;
  int64_t clients = 8;
  int64_t requests = 50;
  util::FlagParser flags;
  flags.AddInt64("products", &products, "BSBM products for the dataset");
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddInt64("max_threads", &max_threads,
                 "highest server worker count in the sweep");
  flags.AddInt64("clients", &clients, "concurrent client connections");
  flags.AddInt64("requests", &requests, "requests per client per config");
  if (int rc = bench::ParseBenchArgs(argc, argv, &flags); rc >= 0) return rc;

  bench::PrintHeader(
      "bench_server — workload daemon QPS / latency under mixed traffic",
      "curation as a service must add transport, not answers: every wire "
      "response is byte-checked against the in-process pipeline while "
      "measuring throughput and tail latency");

  server::WorkbenchConfig wb_config;
  wb_config.products = static_cast<uint64_t>(products);
  wb_config.seed = static_cast<uint64_t>(seed);
  auto wb = server::BuildWorkbench(wb_config);
  if (!wb.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", wb.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: bsbm products=%lld (%zu triples)\n",
              static_cast<long long>(products), wb->store().size());

  // In-process ground truth at the server's pinned options.
  auto tmpl = server::PickTemplate(*wb, kQuery);
  auto domain = server::MakeDomain(*wb, **tmpl);
  if (!tmpl.ok() || !domain.ok()) {
    std::fprintf(stderr, "FATAL: template/domain setup failed\n");
    return 1;
  }
  core::ClassifyOptions classify_options;
  classify_options.max_candidates = kClassifyBudget;
  classify_options.threads = 1;
  auto classification = core::ClassifyParameters(
      **tmpl, *domain, wb->store(), wb->dict(), classify_options);
  if (!classification.ok()) {
    std::fprintf(stderr, "FATAL: %s\n",
                 classification.status().ToString().c_str());
    return 1;
  }
  std::string classify_want =
      server::FormatClassification(**tmpl, *classification, wb->dict());

  util::Rng rng(static_cast<uint64_t>(kRunSeed) + 1000);
  auto bindings = domain->SampleN(&rng, kRunBindings);
  core::WorkloadRunner runner(wb->store(), wb->dict());
  core::WorkloadOptions run_options;
  run_options.threads = 1;
  auto obs = runner.RunAll(**tmpl, bindings, run_options);
  if (!obs.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", obs.status().ToString().c_str());
    return 1;
  }
  std::string run_want = server::FormatObservations(**tmpl, *obs, wb->dict());

  std::printf(
      "\ntraffic: %lld clients x %lld requests, alternating classify "
      "(budget %lld) / run (%lld bindings)\n\n",
      static_cast<long long>(clients), static_cast<long long>(requests),
      static_cast<long long>(kClassifyBudget),
      static_cast<long long>(kRunBindings));
  std::printf("%8s %10s %12s %12s %10s %10s\n", "threads", "QPS", "p50",
              "p99", "identity", "errors");

  bool all_identical = true;
  for (int64_t threads = 1; threads <= max_threads; threads *= 2) {
    server::Service service(*wb);
    server::ServerConfig config;
    config.port = 0;
    config.threads = static_cast<int>(threads);
    config.max_conns = static_cast<int>(clients) + 8;
    config.queue_depth = static_cast<int>(clients) + 8;
    server::Server srv(&service, config);
    Status start = srv.Start();
    if (!start.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", start.ToString().c_str());
      return 1;
    }

    std::vector<TrafficResult> results(static_cast<size_t>(clients));
    util::WallTimer wall;
    std::vector<std::thread> threads_vec;
    for (int64_t c = 0; c < clients; ++c) {
      threads_vec.emplace_back(DriveClient, srv.port(), requests,
                               std::cref(classify_want), std::cref(run_want),
                               &results[static_cast<size_t>(c)]);
    }
    for (auto& t : threads_vec) t.join();
    double elapsed = wall.ElapsedSeconds();
    srv.Stop();

    std::vector<double> latencies;
    uint64_t mismatches = 0;
    uint64_t errors = 0;
    for (const TrafficResult& r : results) {
      latencies.insert(latencies.end(), r.latencies.begin(),
                       r.latencies.end());
      mismatches += r.mismatches;
      errors += r.errors;
    }
    std::sort(latencies.begin(), latencies.end());
    double qps = elapsed > 0
                     ? static_cast<double>(latencies.size()) / elapsed
                     : 0.0;
    bool identical = mismatches == 0 && errors == 0 &&
                     latencies.size() == static_cast<size_t>(
                                             clients * requests);
    all_identical = all_identical && identical;
    std::printf("%8lld %10.0f %12s %12s %10s %10llu\n",
                static_cast<long long>(threads), qps,
                bench::Dur(Percentile(latencies, 0.50)).c_str(),
                bench::Dur(Percentile(latencies, 0.99)).c_str(),
                identical ? "ok" : "DIVERGED",
                static_cast<unsigned long long>(errors));
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "\nFAIL: wire responses diverged from the in-process "
                 "pipeline\n");
    return 1;
  }
  std::printf("\nall wire responses byte-identical to in-process results\n");
  return 0;
}

// bench_load — systems harness for the sharded N-Triples load pipeline.
//
// Measures cold-start: serial streaming load vs the sharded loader at
// 1/2/4/…/--max_threads load threads, and serial vs pool-parallel index
// finalize, on a generated BSBM dataset serialized to N-Triples. Every
// parallel configuration is checked byte-identical to the serial baseline
// (dictionary id -> term mapping and the finalized SPO image); any
// mismatch fails the process, so CI can gate on the exit code. Like the
// other scaling harnesses, wall-time speedups are machine-limited to ~1x
// on 1-core containers — the identity columns are the part that always
// bites (see docs/BENCHMARKS.md).
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bsbm/generator.h"
#include "rdf/ntriples.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace rdfparams;

namespace {

struct Baseline {
  std::string dict_image;   // every term in id order, newline-joined
  std::string store_image;  // finalized SPO serialization
  size_t triples = 0;
  size_t terms = 0;
};

std::string DictImage(const rdf::Dictionary& dict) {
  std::string out;
  for (rdf::TermId id = 0; id < dict.size(); ++id) {
    out += dict.term(id).ToNTriples();
    out += '\n';
  }
  return out;
}

std::string StoreImage(const rdf::Dictionary& dict,
                       const rdf::TripleStore& store) {
  std::ostringstream os;
  Status st = rdf::WriteNTriples(dict, store, os);
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  int64_t products = 3000;
  int64_t max_threads = 8;
  int64_t seed = 42;
  util::FlagParser flags;
  flags.AddInt64("products", &products, "BSBM products for the dataset");
  flags.AddInt64("max_threads", &max_threads, "highest load-thread count");
  flags.AddInt64("seed", &seed, "generator seed");
  if (int rc = bench::ParseBenchArgs(argc, argv, &flags); rc >= 0) return rc;

  bench::PrintHeader(
      "bench_load — sharded N-Triples load + parallel index finalize",
      "loading must not be the bottleneck of parameter curation; the "
      "sharded loader keeps cold-start proportional to cores while "
      "staying byte-identical to serial loading");

  // Build the input document in memory (no disk noise in the numbers).
  auto config = bench::DefaultBsbmConfig(static_cast<uint64_t>(products),
                                         static_cast<uint64_t>(seed));
  bsbm::Dataset dataset = bsbm::Generate(config);
  std::ostringstream nt;
  if (!rdf::WriteNTriples(dataset.dict, dataset.store, nt).ok()) {
    std::fprintf(stderr, "FATAL: cannot serialize dataset\n");
    return 1;
  }
  const std::string document = nt.str();
  const double mb = static_cast<double>(document.size()) / (1024.0 * 1024.0);
  std::printf("input: %.1f MB of N-Triples (%s triples)\n\n", mb,
              util::FormatCount(dataset.store.size()).c_str());

  // Serial baseline: streaming parse + serial finalize.
  Baseline base;
  double serial_parse, serial_finalize;
  {
    rdf::Dictionary dict;
    rdf::TripleStore store;
    util::WallTimer parse_timer;
    if (!rdf::LoadNTriples(document, &dict, &store).ok()) {
      std::fprintf(stderr, "FATAL: serial load failed\n");
      return 1;
    }
    serial_parse = parse_timer.ElapsedSeconds();
    util::WallTimer finalize_timer;
    store.Finalize();
    serial_finalize = finalize_timer.ElapsedSeconds();
    base.dict_image = DictImage(dict);
    base.store_image = StoreImage(dict, store);
    base.triples = store.size();
    base.terms = dict.size();
  }
  std::printf("serial baseline: parse %s (%.1f MB/s), finalize %s\n\n",
              bench::Dur(serial_parse).c_str(),
              serial_parse > 0 ? mb / serial_parse : 0.0,
              bench::Dur(serial_finalize).c_str());

  std::printf("%-14s %-12s %-10s %-12s %-10s %s\n", "load-threads", "parse",
              "speedup", "finalize", "speedup", "identical");
  bool all_identical = true;
  for (int64_t t = 1; t <= max_threads; t *= 2) {
    rdf::Dictionary dict;
    rdf::TripleStore store;
    util::ThreadPool pool(static_cast<size_t>(t) - 1);
    rdf::LoadOptions options;
    options.pool = &pool;
    options.min_chunk_bytes = 64 * 1024;
    util::WallTimer parse_timer;
    if (!rdf::LoadNTriples(document, &dict, &store, options).ok()) {
      std::fprintf(stderr, "FATAL: sharded load failed at threads=%lld\n",
                   static_cast<long long>(t));
      return 1;
    }
    double parse = parse_timer.ElapsedSeconds();
    util::WallTimer finalize_timer;
    store.Finalize(&pool);
    double finalize = finalize_timer.ElapsedSeconds();

    bool identical = store.size() == base.triples &&
                     dict.size() == base.terms &&
                     DictImage(dict) == base.dict_image &&
                     StoreImage(dict, store) == base.store_image;
    all_identical = all_identical && identical;
    std::printf("%-14lld %-12s %-10.2f %-12s %-10.2f %s\n",
                static_cast<long long>(t), bench::Dur(parse).c_str(),
                parse > 0 ? serial_parse / parse : 0.0,
                bench::Dur(finalize).c_str(),
                finalize > 0 ? serial_finalize / finalize : 0.0,
                identical ? "yes" : "NO (BUG)");
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "\nFAIL: a sharded load diverged from the serial result\n");
    return 1;
  }
  std::printf("\nall load-thread counts byte-identical to serial: OK\n");
  return 0;
}
